// Checkpoints persist per-shard backfill progress through the durable disk
// store, inheriting its CRC framing, fsync policy, and torn-tail recovery.
// The store is content-addressed and treats Put as a no-op when the key is
// already present, so a mutable record can't just be rewritten in place:
// each shard ping-pongs between two derived keys (slot = seq%2), doing
// Delete-then-Put on the slot its new sequence number selects. A crash at
// any point leaves at least one intact slot holding either seq or seq-1 —
// recovery decodes both, validates them against the manifest, and resumes
// from the higher sequence. At most one checkpoint interval of acknowledged
// work is re-done after a crash; none is ever lost, because the cursor only
// moves over files whose verify committed before the checkpoint was cut.
package backfill

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// CheckpointStore is the slice of internal/diskstore.Store the checkpoint
// layer needs. Put must be an idempotent no-op when the key exists, and
// Delete a no-op when it doesn't — diskstore provides both.
type CheckpointStore interface {
	Put(h [32]byte, data []byte) error
	Get(h [32]byte) ([]byte, bool, error)
	Delete(h [32]byte) error
}

// Checkpoint is one shard's durable progress record. Positions are
// shard-local: shard s of k owns manifest indices s, s+k, s+2k, …, and
// position p names the (p+1)-th of those. Cursor is the count of leading
// positions fully handled (verified-and-committed or quarantined); Done
// holds positions ≥ Cursor handled out of order. Quarantined lists global
// manifest indices whose files failed deterministically.
type Checkpoint struct {
	ManifestDigest [32]byte
	ManifestLen    uint64
	Shard, Shards  uint32
	Seq            uint64 // increments every save; recovery picks the max
	Cursor         uint64
	Done           []uint64
	Quarantined    []uint64
	FilesDone      uint64 // committed files, cumulative (excludes quarantined)
	BytesIn        uint64 // original bytes of committed files
	BytesOut       uint64 // compressed bytes of committed files
}

const (
	ckptMagic   = "LBK1"
	ckptMaxList = 1 << 22 // sanity cap on decoded slice lengths
)

// ErrManifestMismatch reports a checkpoint that was cut against a different
// manifest (contents, length, or shard count) than the one being resumed.
var ErrManifestMismatch = errors.New("backfill: checkpoint does not match manifest")

// slotKey derives the content-store key for one shard's slot. The key space
// is a fixed prefix hashed with the coordinates, so checkpoints can share a
// store with ordinary chunks without colliding.
func slotKey(shard uint32, slot uint64) [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("lepton/backfill/ckpt/%d/%d", shard, slot)))
}

func (c *Checkpoint) encode() []byte {
	buf := make([]byte, 0, 4+32+8+4+4+8+8+8+8+8+4+8*len(c.Done)+4+8*len(c.Quarantined))
	buf = append(buf, ckptMagic...)
	buf = append(buf, c.ManifestDigest[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, c.ManifestLen)
	buf = binary.LittleEndian.AppendUint32(buf, c.Shard)
	buf = binary.LittleEndian.AppendUint32(buf, c.Shards)
	buf = binary.LittleEndian.AppendUint64(buf, c.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, c.Cursor)
	buf = binary.LittleEndian.AppendUint64(buf, c.FilesDone)
	buf = binary.LittleEndian.AppendUint64(buf, c.BytesIn)
	buf = binary.LittleEndian.AppendUint64(buf, c.BytesOut)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Done)))
	for _, p := range c.Done {
		buf = binary.LittleEndian.AppendUint64(buf, p)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Quarantined)))
	for _, p := range c.Quarantined {
		buf = binary.LittleEndian.AppendUint64(buf, p)
	}
	return buf
}

func decodeCheckpoint(data []byte) (Checkpoint, error) {
	var c Checkpoint
	if len(data) < 4+32+8+4+4+8+8+8+8+8+4 || string(data[:4]) != ckptMagic {
		return c, errors.New("backfill: not a checkpoint record")
	}
	data = data[4:]
	copy(c.ManifestDigest[:], data[:32])
	data = data[32:]
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(data); data = data[8:]; return v }
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(data); data = data[4:]; return v }
	c.ManifestLen = u64()
	c.Shard = u32()
	c.Shards = u32()
	c.Seq = u64()
	c.Cursor = u64()
	c.FilesDone = u64()
	c.BytesIn = u64()
	c.BytesOut = u64()
	readList := func(name string) ([]uint64, error) {
		if len(data) < 4 {
			return nil, fmt.Errorf("backfill: checkpoint truncated before %s", name)
		}
		n := u32()
		if n > ckptMaxList || len(data) < int(n)*8 {
			return nil, fmt.Errorf("backfill: checkpoint %s length %d exceeds record", name, n)
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]uint64, n)
		for i := range out {
			out[i] = u64()
		}
		return out, nil
	}
	var err error
	if c.Done, err = readList("done set"); err != nil {
		return c, err
	}
	if c.Quarantined, err = readList("quarantine list"); err != nil {
		return c, err
	}
	return c, nil
}

// Validate checks that the checkpoint belongs to this manifest and shard
// layout; resuming against anything else silently corrupts progress, so
// mismatches are hard errors.
func (c *Checkpoint) Validate(m Manifest, shards uint32) error {
	if c.ManifestDigest != m.Digest() || c.ManifestLen != uint64(len(m.Entries)) || c.Shards != shards {
		return ErrManifestMismatch
	}
	return nil
}

// SaveCheckpoint durably writes c into its seq-selected slot. The Delete
// clears the slot's previous occupant (seq-2) so the content-addressed Put
// actually lands; the other slot still holds seq-1 if this crashes midway.
func SaveCheckpoint(cs CheckpointStore, c *Checkpoint) error {
	key := slotKey(c.Shard, c.Seq%2)
	if err := cs.Delete(key); err != nil {
		return fmt.Errorf("backfill: clearing checkpoint slot: %w", err)
	}
	if err := cs.Put(key, c.encode()); err != nil {
		return fmt.Errorf("backfill: writing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint recovers shard's latest checkpoint, if any: both slots are
// read, undecodable or mismatched ones are skipped (a torn slot is the
// expected crash artifact, not an error), and the higher sequence wins.
func LoadCheckpoint(cs CheckpointStore, m Manifest, shard, shards uint32) (Checkpoint, bool, error) {
	var best Checkpoint
	found := false
	for slot := uint64(0); slot < 2; slot++ {
		data, ok, err := cs.Get(slotKey(shard, slot))
		if err != nil {
			return Checkpoint{}, false, fmt.Errorf("backfill: reading checkpoint slot %d: %w", slot, err)
		}
		if !ok {
			continue
		}
		c, err := decodeCheckpoint(data)
		if err != nil || c.Shard != shard || c.Validate(m, shards) != nil {
			continue
		}
		if !found || c.Seq > best.Seq {
			best, found = c, true
		}
	}
	return best, found, nil
}
