// The pacer is one node's congestion controller: a CUBIC-style window
// (concave recovery toward the last known-good operating point, convex
// probing beyond it) counted in requests in flight, driven by the same
// Jacobson RTT/RTO estimator the fleet router uses for probes — except
// here it is fed by the backfill's own request completions, because the
// deadline it must set covers a full recompression exchange, not a ping.
// On transport failure the window multiplicatively decreases and the RTO
// backs off exponentially; on a yield signal (live traffic appearing on
// the node) the window is halved toward its floor and the known-good point
// forgotten, so backfill re-probes from the bottom once the node is quiet.
package backfill

import (
	"math"
	"sync"
	"time"

	"lepton/internal/server"
)

// CUBIC constants: the standard scaling factor and multiplicative-decrease
// ratio from the kernel implementation.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// PacerStat is a point-in-time view of one node's pacer.
type PacerStat struct {
	Window   int
	WMax     float64
	InFlight int
	Paused   bool
	RTT      server.RTTStat
}

// Pacer gates one node's backfill concurrency. Launch admits a request
// when the in-flight count is under the window; Done reports the outcome
// and adjusts. Safe for concurrent use.
type Pacer struct {
	rtt server.RTTEstimator

	mu       sync.Mutex
	wnd      float64 // current window, fractional between acks
	wMax     float64 // window just before the last decrease
	wEpoch   float64 // window at the start of the current growth epoch
	k        float64 // cubic inflection offset for this epoch, seconds
	epoch    time.Time
	floor    float64
	cap      float64
	inflight int
	paused   bool
	// cool blocks admissions until the RTO after a failure: a dead node
	// gets one probe attempt per (exponentially backed off) timeout
	// instead of a microsecond-fast connection-refused hot loop.
	cool time.Time
}

// NewPacer builds a pacer with the given window bounds. The window starts
// at the floor and has to earn its way up.
func NewPacer(floor, cap int) *Pacer {
	if floor < 1 {
		floor = 1
	}
	if cap < floor {
		cap = floor
	}
	p := &Pacer{floor: float64(floor), cap: float64(cap)}
	p.wnd = p.floor
	p.resetEpochLocked()
	return p
}

// resetEpochLocked starts a growth epoch from the current window. K places
// the cubic's inflection at the old wMax, giving the concave approach /
// convex departure shape; when the window is already at or past wMax the
// epoch is pure convex probing (K=0).
func (p *Pacer) resetEpochLocked() {
	p.wEpoch = p.wnd
	if p.wMax > p.wnd {
		p.k = math.Cbrt((p.wMax - p.wnd) / cubicC)
	} else {
		p.wMax = p.wnd
		p.k = 0
	}
	p.epoch = time.Now()
}

// Launch admits one request if the pacer has window for it, incrementing
// the in-flight count. Callers must pair every true return with Done.
func (p *Pacer) Launch() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.paused || float64(p.inflight) >= p.wnd {
		return false
	}
	if !p.cool.IsZero() {
		if time.Now().Before(p.cool) {
			return false
		}
		p.cool = time.Time{}
	}
	p.inflight++
	return true
}

// Done reports a request's outcome. Success feeds the RTT estimator and
// grows the window along the cubic; transport failure shrinks the window
// multiplicatively and backs the RTO off. Deterministic per-file failures
// should be reported as success here — the node answered promptly; it is
// the file that is bad.
func (p *Pacer) Done(rtt time.Duration, ok bool) {
	p.mu.Lock()
	if p.inflight > 0 {
		p.inflight--
	}
	if ok {
		t := time.Since(p.epoch).Seconds()
		target := cubicC*math.Pow(t-p.k, 3) + p.wMax
		if target > p.wnd {
			p.wnd = math.Min(target, p.cap)
		}
	} else {
		p.wMax = p.wnd
		p.wnd = math.Max(p.floor, p.wnd*cubicBeta)
		p.resetEpochLocked()
	}
	p.mu.Unlock()
	// RTT bookkeeping outside the window lock; the estimator has its own.
	if ok {
		p.rtt.Observe(rtt)
	} else {
		p.rtt.Backoff()
		cool := time.Now().Add(p.rtt.RTO())
		p.mu.Lock()
		p.cool = cool
		p.mu.Unlock()
	}
}

// Cancel releases an admission whose request never reached the node — the
// in-flight slot is returned with no RTT sample and no window change.
func (p *Pacer) Cancel() {
	p.mu.Lock()
	if p.inflight > 0 {
		p.inflight--
	}
	p.mu.Unlock()
}

// YieldShrink reacts to live traffic on the node: halve toward the floor
// and forget the old operating point so post-yield growth starts gently.
func (p *Pacer) YieldShrink() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wnd = math.Max(p.floor, p.wnd/2)
	p.wMax = p.wnd
	p.resetEpochLocked()
}

// SetPaused freezes (true) or releases (false) admission. Requests already
// in flight are unaffected. Unpausing restarts the growth epoch so the
// pause gap doesn't count as cubic time.
func (p *Pacer) SetPaused(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.paused == v {
		return
	}
	p.paused = v
	if !v {
		p.resetEpochLocked()
	}
}

// RTO returns the node's current request timeout.
func (p *Pacer) RTO() time.Duration { return p.rtt.RTO() }

// InFlight returns the pacer's own outstanding request count — what the
// yield poller subtracts from the node's reported depth to estimate
// foreground load.
func (p *Pacer) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inflight
}

// Stat snapshots the pacer.
func (p *Pacer) Stat() PacerStat {
	p.mu.Lock()
	s := PacerStat{
		Window:   int(p.wnd),
		WMax:     p.wMax,
		InFlight: p.inflight,
		Paused:   p.paused,
	}
	p.mu.Unlock()
	s.RTT = p.rtt.Stat()
	return s
}
