// Package backfill is the §5.6 background recompression pipeline: the
// deployment recompressed hundreds of petabytes of pre-existing images
// over more than a year without hurting live traffic, which takes three
// properties the toy loop never had — the run must survive any crash and
// resume where it stopped (checkpointed cursors persisted through the
// CRC-framed disk log), it must pace itself against real network and node
// conditions (a per-node congestion window with Jacobson RTT/RTO timing
// and CUBIC-style growth), and it must be strictly lower priority than
// live traffic (the engine polls each node's in-flight depth and shrinks
// its window toward a floor, then pauses, when foreground load appears).
//
// The unit of work is one manifest entry: fetch the original bytes from a
// Source, compress them on a fleet node, verify the round trip against the
// input's content hash, and only then count the file done. Files that fail
// deterministically are quarantined — recorded in the checkpoint and
// skipped on resume — so one bad input degrades the run's yield instead of
// wedging it.
package backfill

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Entry is one file in the backfill order: a stable ID plus the recipe the
// synthetic source needs to regenerate its bytes deterministically.
type Entry struct {
	ID   uint64 // stable identifier, unique within the manifest
	Seed int64  // generator seed
	W, H int    // pixel dimensions
}

// Manifest is the ordered work list. The order is the backfill order:
// checkpoints record positions in it, so a manifest must not be reordered
// or edited between a run and its resume (Digest enforces this).
type Manifest struct {
	Entries []Entry
}

// Digest fingerprints the manifest's exact contents and order. It is
// stored in every checkpoint so a resume against a different manifest is
// rejected instead of silently misapplying cursors.
func (m Manifest) Digest() [32]byte {
	h := sha256.New()
	var buf [8 + 8 + 4 + 4]byte
	for _, e := range m.Entries {
		binary.LittleEndian.PutUint64(buf[0:], e.ID)
		binary.LittleEndian.PutUint64(buf[8:], uint64(e.Seed))
		binary.LittleEndian.PutUint32(buf[16:], uint32(e.W))
		binary.LittleEndian.PutUint32(buf[20:], uint32(e.H))
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// sizeClasses is the synthetic photo-library mix: mostly small images with
// a long tail of large ones, zipf-weighted so class 0 dominates — the
// shape of a real photo corpus where thumbnails and phone shots vastly
// outnumber DSLR originals.
var sizeClasses = [][2]int{
	{96, 64}, {128, 96}, {160, 120}, {224, 160}, {320, 240}, {448, 336}, {640, 480},
}

// Synthetic builds a deterministic n-entry manifest: zipf-mixed sizes over
// sizeClasses and per-entry seeds drawn from one seeded rng, with IDs equal
// to the entry's position. The same (seed, n) always produces the same
// manifest, which is what lets tests and benchmarks share fixtures with a
// checked-in recipe instead of checked-in megabytes.
func Synthetic(seed int64, n int) Manifest {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(sizeClasses)-1))
	m := Manifest{Entries: make([]Entry, n)}
	for i := range m.Entries {
		c := sizeClasses[zipf.Uint64()]
		m.Entries[i] = Entry{ID: uint64(i), Seed: rng.Int63(), W: c[0], H: c[1]}
	}
	return m
}

const manifestHeader = "#lepton-backfill-manifest v1"

// WriteManifest serializes m in the line format corpusgen -manifest emits:
// a header line, then one "id seed width height" line per entry.
func WriteManifest(w io.Writer, m Manifest) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, manifestHeader)
	for _, e := range m.Entries {
		fmt.Fprintf(bw, "%d %d %d %d\n", e.ID, e.Seed, e.W, e.H)
	}
	return bw.Flush()
}

// ReadManifest parses the WriteManifest format, validating the header and
// every line; blank lines and #-comments after the header are skipped.
func ReadManifest(r io.Reader) (Manifest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() {
		return Manifest{}, fmt.Errorf("backfill: empty manifest: %w", sc.Err())
	}
	if strings.TrimSpace(sc.Text()) != manifestHeader {
		return Manifest{}, fmt.Errorf("backfill: not a backfill manifest (header %q)", sc.Text())
	}
	var m Manifest
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 4 {
			return Manifest{}, fmt.Errorf("backfill: manifest line %d: want 4 fields, got %d", line, len(f))
		}
		id, err := strconv.ParseUint(f[0], 10, 64)
		if err != nil {
			return Manifest{}, fmt.Errorf("backfill: manifest line %d: id: %w", line, err)
		}
		seed, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return Manifest{}, fmt.Errorf("backfill: manifest line %d: seed: %w", line, err)
		}
		w, err := strconv.Atoi(f[2])
		if err != nil || w <= 0 {
			return Manifest{}, fmt.Errorf("backfill: manifest line %d: bad width %q", line, f[2])
		}
		h, err := strconv.Atoi(f[3])
		if err != nil || h <= 0 {
			return Manifest{}, fmt.Errorf("backfill: manifest line %d: bad height %q", line, f[3])
		}
		m.Entries = append(m.Entries, Entry{ID: id, Seed: seed, W: w, H: h})
	}
	if err := sc.Err(); err != nil {
		return Manifest{}, fmt.Errorf("backfill: reading manifest: %w", err)
	}
	return m, nil
}
