package backfill

import (
	"testing"

	"lepton/internal/diskstore"
)

func openCkptStore(t *testing.T) *diskstore.Store {
	t.Helper()
	cs, err := diskstore.Open(t.TempDir(), diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cs.Close() })
	return cs
}

func TestCheckpointEncodeDecode(t *testing.T) {
	m := Synthetic(1, 100)
	c := Checkpoint{
		ManifestDigest: m.Digest(),
		ManifestLen:    100,
		Shard:          1,
		Shards:         4,
		Seq:            9,
		Cursor:         17,
		Done:           []uint64{19, 22},
		Quarantined:    []uint64{5, 77},
		FilesDone:      40,
		BytesIn:        1 << 20,
		BytesOut:       700 << 10,
	}
	got, err := decodeCheckpoint(c.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != c.Seq || got.Cursor != c.Cursor || got.FilesDone != c.FilesDone ||
		got.BytesIn != c.BytesIn || got.BytesOut != c.BytesOut ||
		got.Shard != c.Shard || got.Shards != c.Shards ||
		len(got.Done) != 2 || got.Done[1] != 22 ||
		len(got.Quarantined) != 2 || got.Quarantined[0] != 5 {
		t.Fatalf("round trip mangled record: %+v", got)
	}
	if err := got.Validate(m, 4); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if err := got.Validate(m, 5); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if err := got.Validate(Synthetic(2, 100), 4); err == nil {
		t.Fatal("digest mismatch accepted")
	}
}

func TestCheckpointDecodeRejectsTruncation(t *testing.T) {
	c := Checkpoint{Done: []uint64{1, 2, 3}, Quarantined: []uint64{4}}
	raw := c.encode()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := decodeCheckpoint(raw[:cut]); err == nil {
			t.Fatalf("accepted %d-byte prefix of a %d-byte record", cut, len(raw))
		}
	}
}

// TestCheckpointPingPong drives the two-slot scheme through many saves on a
// real disk store: every load must return the newest sequence, and deleting
// either slot (the torn-write crash artifact) must fall back to the other.
func TestCheckpointPingPong(t *testing.T) {
	cs := openCkptStore(t)
	m := Synthetic(1, 50)

	c := Checkpoint{ManifestDigest: m.Digest(), ManifestLen: 50, Shard: 0, Shards: 1}
	for seq := uint64(1); seq <= 7; seq++ {
		c.Seq = seq
		c.Cursor = seq * 3
		if err := SaveCheckpoint(cs, &c); err != nil {
			t.Fatalf("save seq %d: %v", seq, err)
		}
		got, ok, err := LoadCheckpoint(cs, m, 0, 1)
		if err != nil || !ok {
			t.Fatalf("load after seq %d: ok=%v err=%v", seq, ok, err)
		}
		if got.Seq != seq || got.Cursor != seq*3 {
			t.Fatalf("load after seq %d returned seq %d cursor %d", seq, got.Seq, got.Cursor)
		}
	}

	// Crash artifact: the slot holding seq 7 is destroyed mid-write.
	// Recovery must fall back to seq 6 in the other slot — never lose both.
	if err := cs.Delete(slotKey(0, 7%2)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadCheckpoint(cs, m, 0, 1)
	if err != nil || !ok {
		t.Fatalf("load after torn slot: ok=%v err=%v", ok, err)
	}
	if got.Seq != 6 {
		t.Fatalf("fallback seq = %d, want 6", got.Seq)
	}
}

func TestCheckpointShardsIsolated(t *testing.T) {
	cs := openCkptStore(t)
	m := Synthetic(1, 50)
	for shard := uint32(0); shard < 3; shard++ {
		c := Checkpoint{
			ManifestDigest: m.Digest(), ManifestLen: 50,
			Shard: shard, Shards: 3, Seq: 1, Cursor: uint64(shard) + 10,
		}
		if err := SaveCheckpoint(cs, &c); err != nil {
			t.Fatal(err)
		}
	}
	for shard := uint32(0); shard < 3; shard++ {
		got, ok, err := LoadCheckpoint(cs, m, shard, 3)
		if err != nil || !ok || got.Cursor != uint64(shard)+10 {
			t.Fatalf("shard %d: ok=%v err=%v got=%+v", shard, ok, err, got)
		}
	}
	if _, ok, _ := LoadCheckpoint(cs, m, 7, 3); ok {
		t.Fatal("unknown shard returned a checkpoint")
	}
}

// TestCheckpointSurvivesStoreReopen is the crash-recovery property end to
// end: checkpoints written through diskstore must come back after the store
// is closed and reopened from disk.
func TestCheckpointSurvivesStoreReopen(t *testing.T) {
	dir := t.TempDir()
	m := Synthetic(1, 50)
	cs, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := Checkpoint{ManifestDigest: m.Digest(), ManifestLen: 50, Shards: 1, Seq: 4, Cursor: 33}
	if err := SaveCheckpoint(cs, &c); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	cs2, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs2.Close()
	got, ok, err := LoadCheckpoint(cs2, m, 0, 1)
	if err != nil || !ok || got.Seq != 4 || got.Cursor != 33 {
		t.Fatalf("reopened store lost the checkpoint: ok=%v err=%v got=%+v", ok, err, got)
	}
}
