package backfill

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lepton/internal/diskstore"
	"lepton/internal/server"
	"lepton/internal/store"
)

// --- harness: real blockservers -------------------------------------------
//
// bfNode mirrors the PR-5 fleet fault harness: a real blockserver on
// loopback TCP whose kill() RSTs accepted connections and closes the
// listener (abortive teardown — the "machine died" signal), restartable on
// the same address.

type bfTracker struct {
	net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func (tr *bfTracker) Accept() (net.Conn, error) {
	c, err := tr.Listener.Accept()
	if err != nil {
		return nil, err
	}
	tr.mu.Lock()
	tr.conns[c] = struct{}{}
	tr.mu.Unlock()
	return c, nil
}

func (tr *bfTracker) abortAll() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for c := range tr.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = c.Close()
	}
}

type bfNode struct {
	addr  string
	mu    sync.Mutex
	b     *server.Blockserver
	tr    *bfTracker
	alive bool
}

func (n *bfNode) start(ln net.Listener) {
	tr := &bfTracker{Listener: ln, conns: map[net.Conn]struct{}{}}
	b := &server.Blockserver{Store: store.New(), MaxConcurrent: 4}
	n.mu.Lock()
	n.b, n.tr, n.alive = b, tr, true
	n.mu.Unlock()
	go func() { _ = b.Serve(tr) }()
}

func (n *bfNode) kill() {
	n.mu.Lock()
	b, tr := n.b, n.tr
	n.alive = false
	n.mu.Unlock()
	tr.abortAll()
	_ = b.Close()
}

func (n *bfNode) restart(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", n.addr[len("tcp:"):])
	if err != nil {
		t.Fatalf("restart %s: %v", n.addr, err)
	}
	n.start(ln)
}

func startBFNodes(t *testing.T, n int) []*bfNode {
	t.Helper()
	nodes := make([]*bfNode, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nd := &bfNode{addr: "tcp:" + ln.Addr().String()}
		nd.start(ln)
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.mu.Lock()
			b, alive := nd.b, nd.alive
			nd.mu.Unlock()
			if alive {
				_ = b.Close()
			}
		}
	})
	return nodes
}

func bfFleet(t *testing.T, addrs []string) *server.Fleet {
	t.Helper()
	f, err := server.NewFleet(addrs, &server.FleetOptions{
		ProbeTimeout:   500 * time.Millisecond,
		HealthInterval: 25 * time.Millisecond,
		Seed:           42,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

// --- harness: protocol stubs ----------------------------------------------
//
// stubNode speaks just enough of the wire protocol for the engine: OpLoad
// answers with a settable in-flight depth (the injected "foreground load"),
// OpCompress sleeps an injectable latency and echoes. Killable and
// restartable like the real thing, but cheap enough for 100k files.

type stubNode struct {
	addr  string
	load  atomic.Uint32
	delay atomic.Int64 // injected latency, ns

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	alive bool
}

func startStubNodes(t *testing.T, n int) []*stubNode {
	t.Helper()
	nodes := make([]*stubNode, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nd := &stubNode{addr: "tcp:" + ln.Addr().String()}
		nd.start(ln)
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.mu.Lock()
			if nd.alive {
				_ = nd.ln.Close()
				for c := range nd.conns {
					_ = c.Close()
				}
			}
			nd.mu.Unlock()
		}
	})
	return nodes
}

func (s *stubNode) start(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.conns = map[net.Conn]struct{}{}
	s.alive = true
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			ok := s.alive
			if ok {
				s.conns[conn] = struct{}{}
			}
			s.mu.Unlock()
			if !ok {
				_ = conn.Close()
				return
			}
			go s.serve(conn)
		}
	}()
}

func (s *stubNode) serve(conn net.Conn) {
	defer conn.Close()
	for {
		op, payload, err := server.ReadRequest(conn)
		if err != nil {
			return
		}
		switch op {
		case server.OpLoad:
			var resp [4]byte
			binary.LittleEndian.PutUint32(resp[:], s.load.Load())
			if server.WriteResponse(conn, server.StatusOK, resp[:]) != nil {
				return
			}
		default:
			if d := s.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if server.WriteResponse(conn, server.StatusOK, payload) != nil {
				return
			}
		}
	}
}

func (s *stubNode) kill() {
	s.mu.Lock()
	s.alive = false
	ln, conns := s.ln, s.conns
	s.conns = map[net.Conn]struct{}{}
	s.mu.Unlock()
	_ = ln.Close()
	for c := range conns {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = c.Close()
	}
}

func (s *stubNode) restart(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", s.addr[len("tcp:"):])
	if err != nil {
		t.Fatalf("restart stub %s: %v", s.addr, err)
	}
	s.start(ln)
}

// cheapSource fabricates deterministic non-JPEG payloads: enough for echo
// stubs, and ~free at 100k-file scale.
func cheapSource() Source {
	return FuncSource(func(_ context.Context, e Entry) ([]byte, error) {
		n := 64 + int(e.ID%7)*37
		b := make([]byte, n)
		binary.LittleEndian.PutUint64(b, e.ID)
		binary.LittleEndian.PutUint64(b[8:], uint64(e.Seed))
		return b, nil
	})
}

// --- tests -----------------------------------------------------------------

// TestEngineCompletesWithVerify runs a small end-to-end backfill against
// real blockservers with verify-before-commit on: every file must commit,
// actually compress, and checkpoint.
func TestEngineCompletesWithVerify(t *testing.T) {
	nodes := startBFNodes(t, 2)
	f := bfFleet(t, []string{nodes[0].addr, nodes[1].addr})
	cs, err := diskstore.Open(t.TempDir(), diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	const n = 40
	m := Synthetic(101, n)
	eng, err := New(Config{
		Verify:          true,
		CheckpointEvery: 20 * time.Millisecond,
		YieldPoll:       -1,
		Logf:            t.Logf,
	}, f, &SyntheticSource{CacheCap: n}, cs, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.TotalFiles != n || len(res.Quarantined) != 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.TotalOut == 0 || res.TotalOut >= res.TotalIn {
		t.Fatalf("no compression: in=%d out=%d", res.TotalIn, res.TotalOut)
	}
	if res.Checkpoints == 0 {
		t.Fatal("no checkpoints cut")
	}
	// The final checkpoint must reflect completion.
	ck, ok, err := LoadCheckpoint(cs, m, 0, 1)
	if err != nil || !ok || ck.Cursor != n || ck.FilesDone != n {
		t.Fatalf("final checkpoint wrong: ok=%v err=%v ck=%+v", ok, err, ck)
	}
}

// TestEngineQuarantine: a file whose source fails and a file no node can
// ever accept (over the protocol payload limit) must both land on the
// quarantine list — and stay there across a resume — while every other
// file completes. (A merely malformed image is NOT quarantined: the
// blockserver stores unsupported inputs via the raw-container fallback,
// which round-trips and commits like any other file.)
func TestEngineQuarantine(t *testing.T) {
	nodes := startBFNodes(t, 2)
	f := bfFleet(t, []string{nodes[0].addr, nodes[1].addr})
	cs, err := diskstore.Open(t.TempDir(), diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	const n = 24
	m := Synthetic(77, n)
	gen := &SyntheticSource{CacheCap: n}
	src := FuncSource(func(ctx context.Context, e Entry) ([]byte, error) {
		switch e.ID {
		case 3:
			return nil, fmt.Errorf("blob store lost file %d", e.ID)
		case 7:
			return make([]byte, 9<<20), nil // over the 8 MiB wire cap
		}
		return gen.Fetch(ctx, e)
	})
	cfg := Config{Verify: true, YieldPoll: -1, Logf: t.Logf}
	eng, err := New(cfg, f, src, cs, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.TotalFiles != n-2 {
		t.Fatalf("bad result: %+v", res)
	}
	if len(res.Quarantined) != 2 || res.Quarantined[0] != 3 || res.Quarantined[1] != 7 {
		t.Fatalf("quarantine list = %v, want [3 7]", res.Quarantined)
	}

	// A resumed engine must see the whole run as already handled — no
	// retry of quarantined files, no recount of committed ones.
	eng2, err := New(cfg, f, src, cs, m)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed || res2.Files != 0 || res2.TotalFiles != n-2 || len(res2.Quarantined) != 2 {
		t.Fatalf("resume after quarantine: %+v", res2)
	}
}

// TestEngineKillResume is the crash-resume acceptance test: a backfill
// under node fault injection is crashed mid-run (checkpoint store torn
// down first, so not even a graceful final checkpoint lands) and resumed.
// Checkpoint progress must be monotone, no acknowledged file may be lost
// or double-counted, and duplicate work must stay bounded.
func TestEngineKillResume(t *testing.T) {
	nodes := startBFNodes(t, 3)
	f := bfFleet(t, []string{nodes[0].addr, nodes[1].addr, nodes[2].addr})
	dir := t.TempDir()
	cs, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const n = 160
	m := Synthetic(5, n)
	src := &SyntheticSource{CacheCap: n}
	cfg := Config{
		Verify:          true,
		CheckpointEvery: 15 * time.Millisecond,
		CheckpointFiles: 24,
		MaxAhead:        48,
		YieldPoll:       -1,
		Logf:            t.Logf,
	}
	eng, err := New(cfg, f, src, cs, m)
	if err != nil {
		t.Fatal(err)
	}

	runCtx, crash := context.WithCancel(context.Background())
	defer crash()
	type runOut struct {
		res Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := eng.Run(runCtx)
		done <- runOut{res, err}
	}()

	// Watch checkpoints as they land: sequence and cursor must be monotone.
	var lastSeq, lastCursor, lastFiles uint64
	observe := func() {
		ck, ok, err := LoadCheckpoint(cs, m, 0, 1)
		if err != nil || !ok {
			return
		}
		if ck.Seq < lastSeq || ck.Cursor < lastCursor || ck.FilesDone < lastFiles {
			t.Errorf("checkpoint regressed: seq %d→%d cursor %d→%d files %d→%d",
				lastSeq, ck.Seq, lastCursor, ck.Cursor, lastFiles, ck.FilesDone)
		}
		lastSeq, lastCursor, lastFiles = ck.Seq, ck.Cursor, ck.FilesDone
	}

	// Let it make real progress, injecting a node kill along the way.
	killed := false
	deadline := time.Now().Add(30 * time.Second)
	for {
		observe()
		st := eng.Stats()
		if !killed && st["total_files"] >= n/8 {
			nodes[1].kill()
			killed = true
		}
		if st["total_files"] >= n/3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backfill made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	observe()

	// Crash: the checkpoint store dies first (so the engine's shutdown
	// checkpoint fails like a real power cut), then the engine is killed.
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	crash()
	out := <-done
	run1 := out.res
	t.Logf("run 1: files=%d retries=%d checkpoints=%d complete=%v err=%v",
		run1.Files, run1.Retries, run1.Checkpoints, run1.Complete, out.err)

	// Restart the dead node and the store; resume.
	nodes[1].restart(t)
	cs2, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs2.Close()
	ck, ok, err := LoadCheckpoint(cs2, m, 0, 1)
	if err != nil || !ok {
		t.Fatalf("no checkpoint survived the crash: ok=%v err=%v", ok, err)
	}
	if ck.Seq < lastSeq || ck.Cursor < lastCursor || ck.FilesDone < lastFiles {
		t.Fatalf("recovered checkpoint older than one observed live: %+v (saw seq %d cursor %d files %d)",
			ck, lastSeq, lastCursor, lastFiles)
	}

	eng2, err := New(cfg, f, src, cs2, m)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("second run did not resume from the checkpoint")
	}
	if !res2.Complete {
		t.Fatalf("resumed run did not finish: %+v", res2)
	}
	// Zero lost acknowledged files AND zero double-counted ones: the
	// cumulative commit count lands exactly on the manifest size.
	if res2.TotalFiles != n || len(res2.Quarantined) != 0 {
		t.Fatalf("acknowledged-file accounting off: total=%d quarantined=%v (want %d, none)",
			res2.TotalFiles, res2.Quarantined, n)
	}
	// Bounded duplicate work: only files committed after the last durable
	// checkpoint (≤ kick threshold + a checkpoint interval of commits)
	// plus in-flight work may be re-done.
	dups := int64(run1.Files) + int64(res2.Files) - n
	if dups < 0 {
		t.Fatalf("lost work: runs committed %d+%d < %d", run1.Files, res2.Files, n)
	}
	bound := int64(cfg.CheckpointFiles + cfg.MaxAhead + 16)
	if dups > bound {
		t.Fatalf("duplicate work %d exceeds bound %d", dups, bound)
	}
}

// TestEngineYieldsToForeground covers live-traffic priority: when a node
// advertises foreground in-flight depth, the engine must first shrink its
// window, then pause outright, and resume once the node is quiet.
func TestEngineYieldsToForeground(t *testing.T) {
	stubs := startStubNodes(t, 1)
	f := bfFleet(t, []string{stubs[0].addr})

	cs, err := diskstore.Open(t.TempDir(), diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	const n = 200000 // big enough that it cannot finish before the phases run
	m := Synthetic(9, n)
	eng, err := New(Config{
		WindowCap: 16,
		YieldPoll: 5 * time.Millisecond,
		YieldLow:  2,
		YieldHigh: 30,
		Logf:      t.Logf,
	}, f, cheapSource(), cs, m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan Result, 1)
	go func() {
		res, _ := eng.Run(ctx)
		done <- res
	}()

	waitProgress := func(min int64, what string) {
		deadline := time.Now().Add(20 * time.Second)
		for eng.Stats()["total_files"] < min {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s (stats %v)", what, eng.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitProgress(100, "initial progress")

	// Phase 1: moderate foreground load → the shrink branch must fire and
	// hold the window at/near the floor while load persists.
	stubs[0].load.Store(10)
	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats()["yield_shrinks"] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no yield shrink under moderate load: %v", eng.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Phase 2: heavy foreground load → pause; progress must stall.
	stubs[0].load.Store(100)
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := eng.Stats()
		if st["yield_pauses"] > 0 && st["node0_paused"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no pause under heavy load: %v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// With the lane paused and in-flight drained, commits must stop.
	time.Sleep(30 * time.Millisecond) // drain
	before := eng.Stats()["total_files"]
	time.Sleep(100 * time.Millisecond)
	after := eng.Stats()["total_files"]
	if after != before {
		t.Fatalf("paused backfill still committed: %d → %d", before, after)
	}

	// Phase 3: load clears → backfill resumes.
	stubs[0].load.Store(0)
	waitProgress(before+50, "resume after yield")
	cancel()
	<-done
}

// TestEngineSustainsScale is the scale acceptance test: a 4-node fleet, a
// 100k-file manifest, injected per-request latency, two node kills (with
// restarts), and a burst of foreground load mid-run. The run must complete
// with exact accounting, monotone checkpoints, and visible yielding.
func TestEngineSustainsScale(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-file scale test; skipped with -short")
	}
	stubs := startStubNodes(t, 4)
	addrs := make([]string, len(stubs))
	for i, s := range stubs {
		addrs[i] = s.addr
		s.delay.Store(int64(500 * time.Microsecond)) // injected latency
	}
	f := bfFleet(t, addrs)
	cs, err := diskstore.Open(t.TempDir(), diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	const n = 100_000
	m := Synthetic(1234, n)
	cfg := Config{
		WindowCap:       32,
		MaxAhead:        4096,
		CheckpointEvery: 50 * time.Millisecond,
		CheckpointFiles: 4096,
		YieldPoll:       10 * time.Millisecond,
		YieldLow:        4,
		YieldHigh:       40,
		Logf:            t.Logf,
	}
	eng, err := New(cfg, f, cheapSource(), cs, m)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Result, 1)
	go func() {
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Errorf("run: %v", err)
		}
		done <- res
	}()

	var lastSeq, lastCursor uint64
	observe := func() {
		ck, ok, err := LoadCheckpoint(cs, m, 0, 1)
		if err != nil || !ok {
			return
		}
		if ck.Seq < lastSeq || ck.Cursor < lastCursor {
			t.Errorf("checkpoint regressed: seq %d→%d cursor %d→%d", lastSeq, ck.Seq, lastCursor, ck.Cursor)
		}
		lastSeq, lastCursor = ck.Seq, ck.Cursor
	}
	progress := func(min int64, what string) {
		deadline := time.Now().Add(120 * time.Second)
		for eng.Stats()["total_files"] < min {
			observe()
			if time.Now().After(deadline) {
				t.Fatalf("stalled before %s: %v", what, eng.Stats())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Fault schedule: kill node 1 early, node 3 later, restart both;
	// meanwhile node 0 sees a foreground burst it must yield to.
	progress(n/10, "first kill")
	stubs[1].kill()
	progress(n/4, "foreground burst")
	stubs[0].load.Store(60)
	burstStart := time.Now()
	for eng.Stats()["yield_shrinks"]+eng.Stats()["yield_pauses"] == 0 {
		observe()
		if time.Since(burstStart) > 30*time.Second {
			t.Fatalf("no yield reaction to foreground burst: %v", eng.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stubs[0].load.Store(0)
	progress(n/2, "second kill")
	stubs[3].kill()
	stubs[1].restart(t)
	progress(3*n/4, "final restart")
	stubs[3].restart(t)

	res := <-done
	observe()
	if !res.Complete || res.TotalFiles != n || len(res.Quarantined) != 0 {
		t.Fatalf("scale run accounting off: %+v", res)
	}
	if res.YieldShrinks+res.YieldPauses == 0 {
		t.Fatal("no yielding recorded despite foreground burst")
	}
	if res.Checkpoints == 0 || lastSeq == 0 {
		t.Fatal("no checkpoints observed")
	}
	t.Logf("scale run: files=%d dup-retries=%d checkpoints=%d shrinks=%d pauses=%d",
		res.Files, res.Retries, res.Checkpoints, res.YieldShrinks, res.YieldPauses)
}
