package backfill

import (
	"context"
	"fmt"
	"sync"

	"lepton/internal/imagegen"
)

// Source produces the original bytes for a manifest entry. A production
// deployment would read blob storage; tests and benchmarks regenerate
// deterministic JPEGs from the entry's recipe. Fetch must be safe for
// concurrent use and must return the same bytes for the same entry every
// time — verify-before-commit hashes what Fetch returned.
type Source interface {
	Fetch(ctx context.Context, e Entry) ([]byte, error)
}

// SyntheticSource regenerates each entry's JPEG from its (seed, w, h)
// recipe via imagegen, memoizing up to CacheCap distinct entries so hot
// retries don't re-encode. The zero value is usable (no cache).
type SyntheticSource struct {
	// CacheCap bounds the memo; 0 disables caching.
	CacheCap int

	mu    sync.Mutex
	cache map[uint64][]byte
}

// Fetch implements Source.
func (s *SyntheticSource) Fetch(ctx context.Context, e Entry) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.CacheCap > 0 {
		s.mu.Lock()
		data, ok := s.cache[e.ID]
		s.mu.Unlock()
		if ok {
			return data, nil
		}
	}
	data, err := imagegen.Generate(e.Seed, e.W, e.H)
	if err != nil {
		return nil, fmt.Errorf("backfill: generate %d: %w", e.ID, err)
	}
	if s.CacheCap > 0 {
		s.mu.Lock()
		if s.cache == nil {
			s.cache = make(map[uint64][]byte)
		}
		if len(s.cache) < s.CacheCap {
			s.cache[e.ID] = data
		}
		s.mu.Unlock()
	}
	return data, nil
}

// FuncSource adapts a function to Source; handy for tests that inject
// deterministic failures for specific IDs.
type FuncSource func(ctx context.Context, e Entry) ([]byte, error)

// Fetch implements Source.
func (f FuncSource) Fetch(ctx context.Context, e Entry) ([]byte, error) { return f(ctx, e) }
