package backfill

import (
	"bytes"
	"strings"
	"testing"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(7, 1000)
	b := Synthetic(7, 1000)
	if a.Digest() != b.Digest() {
		t.Fatal("same seed produced different manifests")
	}
	if c := Synthetic(8, 1000); c.Digest() == a.Digest() {
		t.Fatal("different seeds produced identical manifests")
	}
	if len(a.Entries) != 1000 {
		t.Fatalf("got %d entries", len(a.Entries))
	}
	for i, e := range a.Entries {
		if e.ID != uint64(i) {
			t.Fatalf("entry %d has ID %d; IDs must be stable positions", i, e.ID)
		}
		if e.W <= 0 || e.H <= 0 {
			t.Fatalf("entry %d has degenerate size %dx%d", i, e.W, e.H)
		}
	}
}

func TestSyntheticZipfMix(t *testing.T) {
	m := Synthetic(3, 5000)
	counts := map[[2]int]int{}
	for _, e := range m.Entries {
		counts[[2]int{e.W, e.H}]++
	}
	if len(counts) < 3 {
		t.Fatalf("only %d size classes in the mix", len(counts))
	}
	// Zipf: the smallest class must dominate any large-tail class.
	if counts[[2]int{96, 64}] <= counts[[2]int{640, 480}] {
		t.Fatalf("mix is not zipf-shaped: %v", counts)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := Synthetic(11, 500)
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != m.Digest() {
		t.Fatal("round trip changed the manifest")
	}
}

func TestReadManifestRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"wrong header": "not-a-manifest\n1 2 3 4\n",
		"short line":   manifestHeader + "\n1 2 3\n",
		"bad id":       manifestHeader + "\nx 2 3 4\n",
		"zero width":   manifestHeader + "\n1 2 0 4\n",
	}
	for name, in := range cases {
		if _, err := ReadManifest(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Comments and blank lines after the header are tolerated.
	ok := manifestHeader + "\n\n# comment\n5 6 7 8\n"
	m, err := ReadManifest(strings.NewReader(ok))
	if err != nil || len(m.Entries) != 1 || m.Entries[0].ID != 5 {
		t.Fatalf("comment handling: %v %+v", err, m)
	}
}
