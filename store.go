package lepton

import (
	"context"
	"time"

	"lepton/internal/diskstore"
	"lepton/internal/store"
)

// ChunkHash is a content address: the SHA-256 of a stored chunk's
// compressed bytes.
type ChunkHash = store.Hash

// FileRef addresses a stored file as an ordered list of chunk hashes plus
// its exact original size.
type FileRef = store.FileRef

// StoreCounters is a snapshot of a Store's operational statistics.
type StoreCounters = store.Counters

// SafetyNet is a secondary store that receives every uploaded chunk in
// uncompressed form during ramp-up (§5.7); production deleted it after the
// S3 overload incident of §6.5.
type SafetyNet = store.SafetyNet

// MemSafetyNet is an in-memory SafetyNet; its FailPuts switch reproduces
// the §6.5 incident where the safety net became the availability
// bottleneck.
type MemSafetyNet = store.MemSafetyNet

// NewMemSafetyNet returns an empty in-memory safety net.
func NewMemSafetyNet() *MemSafetyNet { return store.NewMemSafetyNet() }

// StoreOptions configures a Store. The zero value (or nil) is a plain
// in-memory store with 4-MiB chunks, no safety net, no shutoff file, and
// pooled codec state shared with the package-level conversion functions.
type StoreOptions struct {
	// ChunkSize for splitting files; 0 means ChunkSize (4 MiB).
	ChunkSize int
	// ShutoffPath is checked before each Lepton encode; if the file exists
	// the encoder is bypassed and deflate used instead. Production used a
	// file in /dev/shm so a kill switch propagated in seconds rather than
	// the 15-45 minutes of a config deploy (§5.7, §6.5).
	ShutoffPath string
	// SafetyNet, when non-nil, receives every uploaded chunk's raw bytes.
	SafetyNet SafetyNet
	// Codec supplies the pooled conversion pipeline; nil shares the
	// package's default codec.
	Codec *Codec
	// SyncInterval tunes a disk-backed store's fsync batching (ignored by
	// NewStore): 0 group-commits every put before acknowledging it,
	// positive trades a bounded window of unsynced acknowledgements for
	// fewer fsyncs, negative disables syncing (tests).
	SyncInterval time.Duration
}

// Store is the content-addressed chunk store with the safety mechanisms of
// paper §5.7: round-trip admission control (no chunk is stored unless it
// decodes back to its exact input), a checksum over the compressed bytes
// compared before and after storage, a deflate fallback for inputs Lepton
// cannot hold, an optional safety-net secondary store, and a shutoff switch
// checked before every encode.
//
// Every operation takes a context: cancellation aborts the underlying
// conversions mid-segment and surfaces as ctx.Err(). A Store is safe for
// concurrent use.
type Store struct {
	s *store.Store
}

// NewStore returns an empty in-memory store. opts may be nil.
func NewStore(opts *StoreOptions) *Store {
	return configureStore(store.New(), opts)
}

// NewDiskStore returns a store whose chunks live in a log-structured
// on-disk store rooted at dir and survive restarts: reopening the same
// directory replays the segment logs (truncating a torn tail from a crash
// mid-write, quarantining corrupt records) and serves every previously
// acknowledged chunk. opts may be nil; opts.SyncInterval selects the
// durability/fsync trade-off. Callers own Close.
func NewDiskStore(dir string, opts *StoreOptions) (*Store, error) {
	var sync time.Duration
	if opts != nil {
		sync = opts.SyncInterval
	}
	ds, err := diskstore.Open(dir, diskstore.Options{SyncInterval: sync})
	if err != nil {
		return nil, err
	}
	return configureStore(store.NewWithBackend(ds), opts), nil
}

func configureStore(s *store.Store, opts *StoreOptions) *Store {
	codec := defaultCodec
	if opts != nil {
		s.ChunkSize = opts.ChunkSize
		s.ShutoffPath = opts.ShutoffPath
		s.Net = opts.SafetyNet
		if opts.Codec != nil {
			codec = opts.Codec
		}
	}
	s.Codec = codec.core
	return &Store{s: s}
}

// The disk store must remain a drop-in backend for the blockserver store.
var _ store.StatsBackend = (*diskstore.Store)(nil)

// PutFile chunks, compresses, verifies, and admits a file. Chunks that fail
// the Lepton round trip are stored deflate-compressed instead — the upload
// never fails for codec reasons (§5.7). Cancelling ctx aborts the upload
// with ctx.Err() and no FileRef; chunks admitted before the cancellation
// remain stored, and a retried upload re-admits them under the same
// content hashes.
func (st *Store) PutFile(ctx context.Context, data []byte) (FileRef, error) {
	return st.s.PutFileCtx(ctx, data)
}

// GetFile reassembles a file from its reference.
func (st *Store) GetFile(ctx context.Context, ref FileRef) ([]byte, error) {
	return st.s.GetFileCtx(ctx, ref)
}

// Put admits one already-compressed chunk, as uploaded by a client running
// the codec locally (the paper's §7 client-side deployment). The chunk must
// prove decodable before admission.
func (st *Store) Put(ctx context.Context, compressed []byte) (ChunkHash, error) {
	return st.s.PutCompressedChunkCtx(ctx, compressed)
}

// Get decompresses one stored chunk.
func (st *Store) Get(ctx context.Context, h ChunkHash) ([]byte, error) {
	return st.s.GetChunkCtx(ctx, h)
}

// GetCompressed returns a chunk's stored (compressed) bytes without
// decoding them — what a client-side-codec download moves over the wire.
func (st *Store) GetCompressed(h ChunkHash) ([]byte, bool) {
	return st.s.GetCompressedChunk(h)
}

// GetRange decodes only bytes [off, off+n) of one stored chunk's
// reconstruction, clamped at the chunk's size — for seek-indexed containers
// only the arithmetic segments the range touches are decoded.
func (st *Store) GetRange(ctx context.Context, h ChunkHash, off, n int64) ([]byte, error) {
	return st.s.GetChunkRangeCtx(ctx, h, off, n)
}

// GetFileRange reads bytes [off, off+n) of a stored file, clamped at its
// size, decoding only the chunks (and within each chunk only the segments)
// the range overlaps. The store's ChunkSize must match the one the file was
// stored under.
func (st *Store) GetFileRange(ctx context.Context, ref FileRef, off, n int64) ([]byte, error) {
	return st.s.GetFileRangeCtx(ctx, ref, off, n)
}

// RecoverFromSafetyNet restores a chunk's raw bytes from the safety net —
// the disaster-recovery path the team drilled but never needed (§5.7).
func (st *Store) RecoverFromSafetyNet(h ChunkHash) ([]byte, error) {
	return st.s.RecoverFromSafetyNet(h)
}

// Counters returns a snapshot of operational statistics.
func (st *Store) Counters() StoreCounters { return st.s.Counters() }

// Len returns the number of stored chunks.
func (st *Store) Len() int { return st.s.Len() }

// BackendStats returns a disk-backed store's durability counters (segment
// count, live/garbage bytes, quarantined records, compactions, fsyncs);
// nil for the in-memory store.
func (st *Store) BackendStats() map[string]int64 { return st.s.BackendStats() }

// Close releases a disk-backed store's segment files and background loops
// after a final fsync; for an in-memory store it is a no-op.
func (st *Store) Close() error { return st.s.Close() }
