package lepton_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lepton"
	"lepton/internal/imagegen"
)

// goldenInput regenerates the deterministic source JPEG and compression
// options for one golden corpus case.
func goldenInput(t testing.TB, name string, seed int64, w, h int) ([]byte, *lepton.Options) {
	t.Helper()
	opt := &lepton.Options{}
	var data []byte
	var err error
	switch name {
	case "gray":
		img := imagegen.Synthesize(seed, w, h)
		data, err = imagegen.EncodeJPEG(img, imagegen.Options{
			Quality: 85, Grayscale: true, PadBit: 1,
		})
	case "progressive":
		data = progressiveSample(t, seed, w, h)
		opt.AllowProgressive = true
	case "cmyk":
		img := imagegen.Synthesize(seed, w, h)
		data, err = imagegen.EncodeJPEG(img, imagegen.Options{
			Quality: 85, CMYK: true, PadBit: 1, RestartInterval: 4,
		})
		opt.AllowCMYK = true
	default:
		data, err = imagegen.Generate(seed, w, h)
	}
	if err != nil {
		t.Fatal(err)
	}
	return data, opt
}

// checkRange asserts DecompressRange(comp, off, n) equals the matching
// slice of the full reconstruction.
func checkRange(t *testing.T, comp, full []byte, off, n int64) {
	t.Helper()
	got, err := lepton.DecompressRange(comp, off, n)
	if err != nil {
		t.Fatalf("DecompressRange(off=%d n=%d): %v", off, n, err)
	}
	size := int64(len(full))
	a, z := off, off+n
	if a > size {
		a = size
	}
	if z > size || z < 0 {
		z = size
	}
	if z < a {
		z = a
	}
	if !bytes.Equal(got, full[a:z]) {
		t.Fatalf("DecompressRange(off=%d n=%d): %d bytes differ from full-decode slice (first diff %d)",
			off, n, len(got), firstDiff(got, full[a:z]))
	}
	wantN, err := lepton.RangeLength(comp, off, n)
	if err != nil {
		t.Fatalf("RangeLength(off=%d n=%d): %v", off, n, err)
	}
	if int64(len(got)) != wantN {
		t.Fatalf("RangeLength(off=%d n=%d)=%d but DecompressRange returned %d bytes",
			off, n, wantN, len(got))
	}
}

// TestDecompressRangeGoldenDifferential sweeps byte ranges over every
// golden corpus case — including the progressive and CMYK cases, which
// exercise the full-decode fallback — and asserts each range is
// byte-identical to the corresponding slice of the full decompression.
func TestDecompressRangeGoldenDifferential(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			data, opt := goldenInput(t, tc.name, tc.seed, tc.w, tc.h)
			res, err := lepton.Compress(data, opt)
			if err != nil {
				t.Fatal(err)
			}
			comp := res.Compressed
			full, err := lepton.Decompress(comp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(full, data) {
				t.Fatal("full decompression does not round-trip")
			}
			size := int64(len(full))
			// Deterministic edges: start, tail, whole file, clamps.
			for _, p := range [][2]int64{
				{0, 0}, {0, 1}, {0, 100}, {0, size}, {0, size * 2},
				{size - 1, 1}, {size - 1, 50}, {size, 10}, {size + 7, 3},
				{size / 2, 1}, {size / 2, 1024}, {1, size - 2},
			} {
				checkRange(t, comp, full, p[0], p[1])
			}
			// Seeded probes: small reads, medium reads, and reads sized to
			// cross MCU-row and thread-segment boundaries.
			rng := rand.New(rand.NewSource(tc.seed * 1000003))
			for i := 0; i < 20; i++ {
				off := rng.Int63n(size)
				n := rng.Int63n(size/3 + 1)
				checkRange(t, comp, full, off, n)
			}
		})
	}
}

// TestDecompressRangeChunks runs the same differential against individual
// chunk containers from chunked compression: each chunk carries its own
// seek index and must serve sub-ranges of its own reconstruction.
func TestDecompressRangeChunks(t *testing.T) {
	data, _ := goldenInput(t, "color-multiseg", 7, 640, 480)
	chunks, err := lepton.CompressChunks(data, &lepton.ChunkOptions{ChunkSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 3 {
		t.Fatalf("want several chunks, got %d", len(chunks))
	}
	rng := rand.New(rand.NewSource(99))
	for k, ch := range chunks {
		full, err := lepton.DecompressChunk(ch)
		if err != nil {
			t.Fatalf("chunk %d: %v", k, err)
		}
		size := int64(len(full))
		for _, p := range [][2]int64{{0, 1}, {0, size}, {size - 1, 1}, {size / 2, 256}} {
			checkRange(t, ch, full, p[0], p[1])
		}
		for i := 0; i < 6; i++ {
			checkRange(t, ch, full, rng.Int63n(size), rng.Int63n(size/2+1))
		}
	}
}

// TestLegacyContainerBackCompat pins the pre-seek-index container format:
// fixtures captured before the index existed must decompress unchanged
// through every entry point, compressing with DisableSeekIndex must
// reproduce those legacy bytes exactly, and range reads against index-less
// containers must be served correctly by the fallback.
func TestLegacyContainerBackCompat(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := os.ReadFile(filepath.Join("testdata", "legacy-"+tc.name+".lep"))
			if err != nil {
				t.Fatalf("missing legacy fixture: %v", err)
			}
			data, opt := goldenInput(t, tc.name, tc.seed, tc.w, tc.h)

			// Every decompress entry point must reconstruct the original.
			back, err := lepton.Decompress(legacy)
			if err != nil {
				t.Fatalf("Decompress: %v", err)
			}
			if !bytes.Equal(back, data) {
				t.Fatal("legacy container does not decompress to the original JPEG")
			}
			var buf bytes.Buffer
			if err := lepton.DecompressTo(&buf, legacy); err != nil {
				t.Fatalf("DecompressTo: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatal("DecompressTo mismatch on legacy container")
			}
			if back, err = lepton.DecompressChunk(legacy); err != nil || !bytes.Equal(back, data) {
				t.Fatalf("DecompressChunk on legacy container: %v", err)
			}

			// Compressing with the index disabled must reproduce the legacy
			// format byte for byte (and for progressive/CMYK, which never
			// carry an index, current output must equal legacy output).
			o := *opt
			o.DisableSeekIndex = true
			res, err := lepton.Compress(data, &o)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Compressed, legacy) {
				t.Fatalf("DisableSeekIndex output diverged from legacy container (%d vs %d bytes, first diff %d)",
					len(res.Compressed), len(legacy), firstDiff(res.Compressed, legacy))
			}

			// Range reads on index-less containers go through the fallback
			// and must still match slices of the full decode.
			size := int64(len(data))
			before := lepton.RangeStats()
			for _, p := range [][2]int64{{0, 64}, {size / 2, 512}, {size - 9, 9}} {
				checkRange(t, legacy, data, p[0], p[1])
			}
			after := lepton.RangeStats()
			if after["range_fast"]-before["range_fast"] != 0 {
				t.Error("legacy container unexpectedly took the indexed fast path")
			}
		})
	}
}
