// Benchmarks regenerating the paper's evaluation, one benchmark (or group)
// per table and figure. `go test -bench=. -benchmem` prints the series;
// cmd/leptonbench renders the same experiments as full tables with
// percentile detail. EXPERIMENTS.md maps each benchmark to its paper
// figure and records paper-vs-measured values.
package lepton_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"lepton"
	"lepton/internal/baseline"
	"lepton/internal/cluster"
	"lepton/internal/imagegen"
	"lepton/internal/server"
	"lepton/internal/stats"
	"lepton/internal/store"
)

// Shared corpus, generated once.
var (
	corpusOnce  sync.Once
	benchCorpus [][]byte // ~40-400 KiB images
	benchBig    []byte   // ~0.5-1 MiB image for thread sweeps
)

func loadCorpus(b *testing.B) {
	b.Helper()
	corpusOnce.Do(func() {
		for seed := int64(1); seed <= 8; seed++ {
			data, err := imagegen.Generate(seed, 256+int(seed)*96, 192+int(seed)*72)
			if err != nil {
				panic(err)
			}
			benchCorpus = append(benchCorpus, data)
		}
		var err error
		benchBig, err = imagegen.Generate(99, 1600, 1200)
		if err != nil {
			panic(err)
		}
	})
}

func corpusBytes() int64 {
	var n int64
	for _, d := range benchCorpus {
		n += int64(len(d))
	}
	return n
}

// --- Figure 1 / Figure 2: savings and speed per codec --------------------

func benchCodecCompress(b *testing.B, c baseline.Codec) {
	loadCorpus(b)
	b.SetBytes(corpusBytes())
	// allocs/op makes the one-shot vs pooled-codec difference visible:
	// compare the "lepton" and "lepton-pooled" rows.
	b.ReportAllocs()
	var out, in int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, in = 0, 0
		for _, data := range benchCorpus {
			comp, err := c.Compress(data)
			if err != nil {
				out += int64(len(data)) // rejected: stored raw
				in += int64(len(data))
				continue
			}
			out += int64(len(comp))
			in += int64(len(data))
		}
	}
	b.ReportMetric(100*(1-float64(out)/float64(in)), "savings%")
}

func benchCodecDecompress(b *testing.B, c baseline.Codec) {
	loadCorpus(b)
	var comps [][]byte
	for _, data := range benchCorpus {
		comp, err := c.Compress(data)
		if err != nil {
			continue
		}
		comps = append(comps, comp)
	}
	b.SetBytes(corpusBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, comp := range comps {
			if _, err := c.Decompress(comp); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func allBenchCodecs() []baseline.Codec {
	return []baseline.Codec{
		baseline.Lepton{},
		baseline.LeptonPooled{},
		baseline.Lepton1Way{},
		baseline.PackJPGStyle{},
		baseline.SpecArith{},
		baseline.Rescan{},
		baseline.Flate{Level: 6},
		baseline.Flate{Level: 9},
		baseline.RC1{},
	}
}

// BenchmarkFigure2Compress reports compression savings and encode speed for
// every codec (Figure 2 top+middle panels; Figure 1's x-axis).
func BenchmarkFigure2Compress(b *testing.B) {
	for _, c := range allBenchCodecs() {
		b.Run(c.Name(), func(b *testing.B) { benchCodecCompress(b, c) })
	}
}

// BenchmarkFigure1Decompress reports decompression speed (Figure 1's
// y-axis; Figure 2 bottom panel).
func BenchmarkFigure1Decompress(b *testing.B) {
	for _, c := range allBenchCodecs() {
		b.Run(c.Name(), func(b *testing.B) { benchCodecDecompress(b, c) })
	}
}

// --- Figure 3: memory (use -benchmem: B/op is the allocation budget) -----

// BenchmarkFigure3Memory isolates one encode+decode per iteration so B/op
// approximates per-conversion allocations (Figure 3's resident-memory
// comparison; see also leptonbench -fig 3 for heap high-water sampling).
func BenchmarkFigure3Memory(b *testing.B) {
	for _, c := range allBenchCodecs() {
		b.Run(c.Name(), func(b *testing.B) {
			loadCorpus(b)
			data := benchCorpus[len(benchCorpus)-1]
			comp, err := c.Compress(data)
			if err != nil {
				b.Skip("codec rejects corpus file")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Compress(data); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Decompress(comp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4: compression breakdown by component ------------------------

// BenchmarkFigure4Breakdown runs stat-collecting encodes and reports the
// component ratios (header/7x7/edge/DC shares are printed by leptonbench).
func BenchmarkFigure4Breakdown(b *testing.B) {
	loadCorpus(b)
	b.SetBytes(corpusBytes())
	var total, compressed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total, compressed = 0, 0
		for _, data := range benchCorpus {
			res, err := lepton.Compress(data, &lepton.Options{CollectStats: true})
			if err != nil {
				b.Fatal(err)
			}
			total += int64(len(data))
			compressed += int64(len(res.Compressed))
		}
	}
	b.ReportMetric(100*float64(compressed)/float64(total), "ratio%")
}

// --- Figures 6/7/8: size and thread sweeps -------------------------------

// BenchmarkFigure6SavingsBySize reports savings per size bucket.
func BenchmarkFigure6SavingsBySize(b *testing.B) {
	for _, w := range []int{128, 320, 640, 1280} {
		data, err := imagegen.Generate(int64(w), w, w*3/4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%dKiB", len(data)>>10), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var comp int
			for i := 0; i < b.N; i++ {
				res, err := lepton.Compress(data, nil)
				if err != nil {
					b.Fatal(err)
				}
				comp = len(res.Compressed)
			}
			b.ReportMetric(100*(1-float64(comp)/float64(len(data))), "savings%")
		})
	}
}

// BenchmarkFigure7DecodeThreads sweeps thread-segment counts on a large
// file (decompression speed vs threads). On a multi-core host throughput
// rises with threads; the segment plumbing is exercised regardless.
func BenchmarkFigure7DecodeThreads(b *testing.B) {
	loadCorpus(b)
	for _, threads := range []int{1, 2, 4, 8} {
		res, err := lepton.Compress(benchBig, &lepton.Options{Threads: threads})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			b.SetBytes(int64(len(benchBig)))
			for i := 0; i < b.N; i++ {
				if _, err := lepton.Decompress(res.Compressed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure8EncodeThreads sweeps thread counts for compression.
func BenchmarkFigure8EncodeThreads(b *testing.B) {
	loadCorpus(b)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			b.SetBytes(int64(len(benchBig)))
			for i := 0; i < b.N; i++ {
				if _, err := lepton.Compress(benchBig, &lepton.Options{Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §4.3 ablations -------------------------------------------------------

// BenchmarkAblation measures compressed size with each predictor disabled
// (§4.3: edge prediction and DC gradient contributions).
func BenchmarkAblation(b *testing.B) {
	cases := []struct {
		name string
		opt  lepton.Options
	}{
		{"full", lepton.Options{}},
		{"noEdge", lepton.Options{DisableEdgePrediction: true}},
		{"noDCGradient", lepton.Options{DisableDCGradient: true}},
		{"packjpg2007", lepton.Options{DisableEdgePrediction: true, DisableDCGradient: true}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			loadCorpus(b)
			b.SetBytes(corpusBytes())
			var out, in int64
			for i := 0; i < b.N; i++ {
				out, in = 0, 0
				for _, data := range benchCorpus {
					res, err := lepton.Compress(data, &tc.opt)
					if err != nil {
						b.Fatal(err)
					}
					out += int64(len(res.Compressed))
					in += int64(len(data))
				}
			}
			b.ReportMetric(100*(1-float64(out)/float64(in)), "savings%")
		})
	}
}

// --- Chunk layer ----------------------------------------------------------

// BenchmarkChunkedCompress measures the 4-MiB-chunk path (at a reduced
// chunk size so the corpus spans several chunks).
func BenchmarkChunkedCompress(b *testing.B) {
	loadCorpus(b)
	b.SetBytes(int64(len(benchBig)))
	for i := 0; i < b.N; i++ {
		if _, err := lepton.CompressChunks(benchBig, &lepton.ChunkOptions{ChunkSize: 64 << 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkedDecompressOne measures independent single-chunk decode —
// the user-visible serving operation.
func BenchmarkChunkedDecompressOne(b *testing.B) {
	loadCorpus(b)
	chunks, err := lepton.CompressChunks(benchBig, &lepton.ChunkOptions{ChunkSize: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	mid := chunks[len(chunks)/2]
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lepton.DecompressChunk(mid); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §6.2 error table -----------------------------------------------------

// BenchmarkTableErrorCodes qualifies the anomaly-mix corpus and reports the
// success percentage (§6.2's top line: 94.069%).
func BenchmarkTableErrorCodes(b *testing.B) {
	corpus := cluster.BuildErrorCorpus(1, 100)
	b.ResetTimer()
	var q *store.QualReport
	for i := 0; i < b.N; i++ {
		q = store.Qualify(corpus)
	}
	b.ReportMetric(100*q.SuccessRatio(), "success%")
}

// --- Figures 5, 9-14: deployment simulations -------------------------------

// BenchmarkFigure9Outsourcing runs the fleet simulation per strategy and
// reports the mean hourly p99 concurrency.
func BenchmarkFigure9Outsourcing(b *testing.B) {
	for _, strat := range []cluster.Strategy{cluster.Control, cluster.ToDedicated, cluster.ToSelf} {
		b.Run(strat.String(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				cfg := cluster.DefaultConfig()
				cfg.Duration = 2 * 3600
				cfg.Strategy = strat
				cfg.Threshold = 4
				m := cluster.NewSim(cfg).Run()
				mean = stats.Summarize(m.ConcurrencySamples).Mean
			}
			b.ReportMetric(mean, "p99-concurrency")
		})
	}
}

// BenchmarkFigure10PeakLatency reports the peak-hours p99 compression
// latency per strategy.
func BenchmarkFigure10PeakLatency(b *testing.B) {
	for _, strat := range []cluster.Strategy{cluster.Control, cluster.ToDedicated, cluster.ToSelf} {
		b.Run(strat.String(), func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				cfg := cluster.DefaultConfig()
				cfg.Duration = 2 * 3600
				cfg.Strategy = strat
				m := cluster.NewSim(cfg).Run()
				p99 = stats.Summarize(m.EncodeLatency).P99
			}
			b.ReportMetric(p99, "p99-seconds")
		})
	}
}

// BenchmarkFigure11Backfill runs the power-trace model.
func BenchmarkFigure11Backfill(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultBackfillConfig()
		samples := cluster.Figure11(cfg)
		var during, outside float64
		var nd, no int
		for _, s := range samples {
			if s.Hour > cfg.OutageStartHour+1 && s.Hour < cfg.OutageEndHour {
				during += s.PowerKW
				nd++
			} else if s.Hour < cfg.OutageStartHour {
				outside += s.PowerKW
				no++
			}
		}
		drop = outside/float64(no) - during/float64(nd)
	}
	b.ReportMetric(drop, "outage-drop-kW")
}

// BenchmarkFigure12THP reports the p95 improvement from disabling THP.
func BenchmarkFigure12THP(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts := cluster.Figure12(1)
		var before, after float64
		var nb, na int
		for _, p := range pts {
			if p.Hour < 6 {
				before += p.P95
				nb++
			} else if p.Hour >= 8 {
				after += p.P95
				na++
			}
		}
		ratio = (before / float64(nb)) / (after / float64(na))
	}
	b.ReportMetric(ratio, "p95-improvement-x")
}

// BenchmarkFigure13Ramp evaluates the decode:encode rollout model.
func BenchmarkFigure13Ramp(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		_, ratio := cluster.Figure13(90)
		final = ratio[len(ratio)-1]
	}
	b.ReportMetric(final, "day90-ratio")
}

// BenchmarkFigure14Degradation reports the month-3 decode p99 of the
// no-outsourcing fleet.
func BenchmarkFigure14Degradation(b *testing.B) {
	var p99 float64
	for i := 0; i < b.N; i++ {
		pts := cluster.Figure14(1, 90, 45)
		p99 = pts[len(pts)-1].P99
	}
	b.ReportMetric(p99, "day90-p99-s")
}

// BenchmarkFigure5Workload runs the weekly workload model and reports the
// weekday decode:encode ratio.
func BenchmarkFigure5Workload(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		dec, enc := cluster.Figure5(1)
		var d, e float64
		for day := 0; day < 5; day++ {
			for h := 0; h < 24; h++ {
				d += dec.Vals[day*24+h]
				e += enc.Vals[day*24+h]
			}
		}
		ratio = d / e
	}
	b.ReportMetric(ratio, "weekday-ratio")
}

// --- §5.5: outsourcing socket overhead (real sockets) ----------------------

// BenchmarkOutsourcingSocketOverhead measures compress RPCs over a Unix
// socket vs TCP loopback (the paper's 7.9% remote overhead).
func BenchmarkOutsourcingSocketOverhead(b *testing.B) {
	loadCorpus(b)
	data := benchCorpus[2]
	for _, transport := range []string{"unix", "tcp"} {
		b.Run(transport, func(b *testing.B) {
			bs := &server.Blockserver{}
			var addr string
			var err error
			if transport == "unix" {
				addr, err = server.ListenAndServe("unix:"+b.TempDir()+"/l.sock", bs)
			} else {
				addr, err = server.ListenAndServe("tcp:127.0.0.1:0", bs)
			}
			if err != nil {
				b.Fatal(err)
			}
			defer bs.Close()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := server.Do(addr, server.OpCompress, data, 30*time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
