// Package lepton is a from-scratch Go implementation of Lepton, the
// format-specific, fault-tolerant JPEG recompressor Dropbox deployed on its
// file-storage backend ("The Design, Implementation, and Deployment of a
// System to Transparently Compress Hundreds of Petabytes of Image Files for
// a File-Storage Service", NSDI 2017).
//
// Lepton losslessly compresses baseline JPEG files by about a quarter: it
// replaces the file's Huffman coding with an adaptive binary arithmetic
// coder driven by a large statistic-bin model over DCT coefficients, while
// guaranteeing bit-exact round trips. The format supports independent
// decompression of 4-MiB file chunks and multithreaded decoding via
// "Huffman handover words".
//
// Quick start:
//
//	res, err := lepton.Compress(jpegBytes, nil)
//	// store res.Compressed ...
//	orig, err := lepton.Decompress(res.Compressed)
//	// orig is byte-identical to jpegBytes
//
// Services converting many files should hold a Codec, which pools the
// model tables, coefficient planes, and scratch that dominate per-call
// memory, as the deployed blockservers did:
//
//	codec := lepton.NewCodec()
//	for _, f := range files {
//		res, err := codec.Compress(f, nil) // identical output, far fewer allocations
//		...
//	}
//
// The package-level functions are thin wrappers over one shared default
// codec.
//
// Files the codec cannot handle (progressive JPEG, CMYK, corrupt data, ...)
// are rejected with a classified Reason; callers typically fall back to
// generic compression, as production did.
package lepton

import (
	"errors"
	"io"

	"lepton/internal/chunk"
	"lepton/internal/core"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

// Reason classifies why an input was rejected, matching the paper's §6.2
// exit-code taxonomy.
type Reason = jpeg.Reason

// Rejection reasons.
const (
	ReasonNone        = jpeg.ReasonNone
	ReasonProgressive = jpeg.ReasonProgressive
	ReasonUnsupported = jpeg.ReasonUnsupported
	ReasonNotImage    = jpeg.ReasonNotImage
	ReasonCMYK        = jpeg.ReasonCMYK
	ReasonMemDecode   = jpeg.ReasonMemDecode
	ReasonMemEncode   = jpeg.ReasonMemEncode
	ReasonChromaSub   = jpeg.ReasonChromaSub
	ReasonACRange     = jpeg.ReasonACRange
	ReasonRoundtrip   = jpeg.ReasonRoundtrip
	ReasonTruncated   = jpeg.ReasonTruncated
)

// ReasonOf extracts the rejection reason from an error returned by this
// package, or ReasonUnsupported for untyped errors, or ReasonNone for nil.
func ReasonOf(err error) Reason { return jpeg.ReasonOf(err) }

// Options tunes compression. The zero value (or nil) is the deployed
// production configuration.
type Options struct {
	// Threads forces the number of thread segments (1..64); 0 selects by
	// file size, matching the paper's cutoffs (Figures 7-8).
	Threads int
	// SingleModel is the "Lepton 1-way" configuration: one model adapted
	// across the whole image for maximum compression, single-threaded
	// decode.
	SingleModel bool
	// Verify decodes the output and compares it byte-for-byte against the
	// input before returning (production admission control, §5.7).
	Verify bool
	// CollectStats fills Result.ClassBits/OriginalClassBits (Figure 4).
	CollectStats bool
	// DisableEdgePrediction / DisableDCGradient turn off the two headline
	// predictors (§4.3 ablations).
	DisableEdgePrediction bool
	DisableDCGradient     bool
	// MemDecodeBudget / MemEncodeBudget bound coefficient memory in bytes;
	// 0 selects the deployed limits (24 MiB / 178 MiB).
	MemDecodeBudget int64
	MemEncodeBudget int64
	// AllowProgressive enables compression of spectral-selection
	// progressive JPEGs. The deployed system kept this off "for
	// simplicity" (§6.2) even though the binary could handle them;
	// successive-approximation files remain rejected either way.
	AllowProgressive bool
	// AllowCMYK enables four-component (CMYK) files, the paper's "extra
	// model for the 4th color channel" — likewise off in production.
	AllowCMYK bool
}

func (o *Options) coreOptions() core.EncodeOptions {
	if o == nil {
		return core.EncodeOptions{}
	}
	flags := model.Flags{
		EdgePrediction: !o.DisableEdgePrediction,
		DCGradient:     !o.DisableDCGradient,
	}
	return core.EncodeOptions{
		Flags:            &flags,
		ForceSegments:    o.Threads,
		SingleModel:      o.SingleModel,
		VerifyRoundtrip:  o.Verify,
		CollectStats:     o.CollectStats,
		MemDecodeBudget:  o.MemDecodeBudget,
		MemEncodeBudget:  o.MemEncodeBudget,
		AllowProgressive: o.AllowProgressive,
		AllowCMYK:        o.AllowCMYK,
	}
}

// Result holds compression output and accounting.
type Result struct {
	// Compressed is the Lepton container.
	Compressed []byte
	// Threads is the thread-segment count used.
	Threads int
	// ClassBits / OriginalClassBits break the compressed and original scan
	// down by coefficient class (7x7, 7x1/1x7, DC) when CollectStats was
	// set; see Figure 4.
	ClassBits         [model.NumClasses]float64
	OriginalClassBits [model.NumClasses]int64
	// HeaderOriginal is the verbatim JPEG header size in bytes.
	HeaderOriginal int
	// ContainerOverhead is the container size minus the arithmetic
	// streams: the zlib-compressed header plus format framing.
	ContainerOverhead int
}

// Codec is a reusable compression pipeline. It owns pools for the model
// statistic-bin tables, coefficient planes, and per-segment scratch that
// dominate a conversion's allocations, so a long-lived codec serving many
// files reuses that memory instead of re-allocating it per call — the
// shape of the paper's blockserver deployment, where per-request memory
// was the binding constraint (§6.2). Output is byte-identical to the
// one-shot package functions. A Codec is safe for concurrent use.
type Codec struct {
	core *core.Codec
}

// NewCodec returns a reusable codec with empty pools.
func NewCodec() *Codec { return &Codec{core: core.NewCodec()} }

// defaultCodec backs the package-level convenience functions, so even
// casual callers get steady-state pooling.
var defaultCodec = NewCodec()

// Compress compresses one whole baseline JPEG file. opts may be nil.
func (c *Codec) Compress(data []byte, opts *Options) (*Result, error) {
	res, err := c.core.Encode(data, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Result{
		Compressed:        res.Compressed,
		Threads:           res.Segments,
		ClassBits:         res.ClassBits,
		OriginalClassBits: res.OriginalClassBits,
		HeaderOriginal:    res.HeaderOriginal,
		ContainerOverhead: res.HeaderCompressed,
	}, nil
}

// CompressTo compresses data and writes the container to w, returning the
// accounting Result with Compressed left nil.
func (c *Codec) CompressTo(w io.Writer, data []byte, opts *Options) (*Result, error) {
	res, err := c.core.EncodeTo(w, data, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Result{
		Threads:           res.Segments,
		ClassBits:         res.ClassBits,
		OriginalClassBits: res.OriginalClassBits,
		HeaderOriginal:    res.HeaderOriginal,
		ContainerOverhead: res.HeaderCompressed,
	}, nil
}

// Decompress reconstructs the exact original bytes of a compressed file or
// chunk.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.core.Decode(comp, 0)
}

// DecompressTo streams the reconstruction to w with low time-to-first-byte:
// output is written segment by segment as decoding completes (§3.4).
func (c *Codec) DecompressTo(w io.Writer, comp []byte) error {
	return c.core.DecodeTo(w, comp, 0)
}

// Verify round-trips data through compress and decompress and reports
// whether the reconstruction is exact (§5.7 admission control).
func (c *Codec) Verify(data []byte, opts *Options) error {
	o := &Options{}
	if opts != nil {
		cp := *opts
		o = &cp
	}
	o.Verify = true
	_, err := c.Compress(data, o)
	return err
}

// Compress compresses one whole baseline JPEG file via the default codec.
// opts may be nil.
func Compress(data []byte, opts *Options) (*Result, error) {
	return defaultCodec.Compress(data, opts)
}

// Decompress reconstructs the exact original bytes of a compressed file or
// chunk.
func Decompress(comp []byte) ([]byte, error) {
	return defaultCodec.Decompress(comp)
}

// DecompressTo streams the reconstruction to w with low time-to-first-byte:
// output is written segment by segment as decoding completes (§3.4).
func DecompressTo(w io.Writer, comp []byte) error {
	return defaultCodec.DecompressTo(w, comp)
}

// IsCompressed reports whether data begins with the Lepton magic number
// (0xCF 0x84, A.1).
func IsCompressed(data []byte) bool { return core.IsLepton(data) }

// ChunkSize is the Dropbox block size: files are stored as independent
// chunks of at most this many bytes (§1).
const ChunkSize = chunk.DefaultChunkSize

// ChunkOptions tunes chunked compression.
type ChunkOptions struct {
	// ChunkSize in bytes; 0 means ChunkSize (4 MiB).
	ChunkSize int
	// Verify round-trips every chunk before returning.
	Verify bool
	// Threads forces the per-chunk segment count; 0 selects by size.
	Threads int
	// BufferLimit bounds how much of a stream CompressChunksFrom holds in
	// memory; 0 means the deployed encode budget. Larger streams are
	// chunk-compressed incrementally in raw mode with O(ChunkSize) memory.
	BufferLimit int64
}

func (o *ChunkOptions) chunkOptions(c *core.Codec) chunk.Options {
	co := chunk.Options{Codec: c}
	if o != nil {
		co.ChunkSize = o.ChunkSize
		co.VerifyRoundtrip = o.Verify
		co.SegmentsPerChunk = o.Threads
		co.BufferLimit = o.BufferLimit
	}
	return co
}

// CompressChunks splits data at fixed chunk boundaries and compresses each
// chunk independently. Any chunk — including chunks beginning mid-scan or
// mid-Huffman-symbol — can later be decompressed on its own with
// Decompress/DecompressChunk. Inputs Lepton cannot handle come back as
// deflate-compressed raw chunks rather than an error.
func (c *Codec) CompressChunks(data []byte, opts *ChunkOptions) ([][]byte, error) {
	return chunk.Compress(data, opts.chunkOptions(c.core))
}

// CompressChunksFrom chunk-compresses the stream r incrementally, calling
// emit with each finished chunk in order, so a file need not be held in
// memory whole: streams within the buffer limit produce output identical
// to CompressChunks, and larger streams — beyond the encoder's memory
// admission budget anyway — deflate through in constant space.
func (c *Codec) CompressChunksFrom(r io.Reader, opts *ChunkOptions, emit func(chunk []byte) error) error {
	return chunk.CompressFrom(r, opts.chunkOptions(c.core), emit)
}

// DecompressChunk reconstructs one chunk's original bytes, independently of
// every other chunk.
func (c *Codec) DecompressChunk(chunkData []byte) ([]byte, error) {
	return c.core.Decode(chunkData, 0)
}

// CompressChunks splits data into independently decompressible chunks via
// the default codec.
func CompressChunks(data []byte, opts *ChunkOptions) ([][]byte, error) {
	return defaultCodec.CompressChunks(data, opts)
}

// CompressChunksFrom streams chunked compression via the default codec.
func CompressChunksFrom(r io.Reader, opts *ChunkOptions, emit func(chunk []byte) error) error {
	return defaultCodec.CompressChunksFrom(r, opts, emit)
}

// DecompressChunk reconstructs one chunk's original bytes, independently of
// every other chunk.
func DecompressChunk(chunkData []byte) ([]byte, error) {
	return defaultCodec.DecompressChunk(chunkData)
}

// ReassembleChunks decompresses a chunk sequence and concatenates the
// results into the original file.
func (c *Codec) ReassembleChunks(chunks [][]byte) ([]byte, error) {
	return chunk.ReassembleWith(c.core, chunks)
}

// ReassembleChunks decompresses a chunk sequence via the default codec.
func ReassembleChunks(chunks [][]byte) ([]byte, error) {
	return defaultCodec.ReassembleChunks(chunks)
}

// Verify round-trips data through compress and decompress and reports
// whether the reconstruction is exact. It is the admission check production
// ran before accepting any chunk into storage (§5.7).
func Verify(data []byte, opts *Options) error {
	return defaultCodec.Verify(data, opts)
}

// ErrNotLepton is returned by Decompress when the payload lacks the Lepton
// magic.
var ErrNotLepton = errors.New("lepton: not a Lepton container")
