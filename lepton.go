// Package lepton is a from-scratch Go implementation of Lepton, the
// format-specific, fault-tolerant JPEG recompressor Dropbox deployed on its
// file-storage backend ("The Design, Implementation, and Deployment of a
// System to Transparently Compress Hundreds of Petabytes of Image Files for
// a File-Storage Service", NSDI 2017).
//
// Lepton losslessly compresses baseline JPEG files by about a quarter: it
// replaces the file's Huffman coding with an adaptive binary arithmetic
// coder driven by a large statistic-bin model over DCT coefficients, while
// guaranteeing bit-exact round trips. The format supports independent
// decompression of 4-MiB file chunks and multithreaded decoding via
// "Huffman handover words".
//
// Quick start:
//
//	res, err := lepton.Compress(jpegBytes, nil)
//	// store res.Compressed ...
//	orig, err := lepton.Decompress(res.Compressed)
//	// orig is byte-identical to jpegBytes
//
// Conversions stream row by row, as the deployed system did (§5.1): no
// whole coefficient plane is ever materialized, per-request coefficient
// memory is a sliding window of block rows per thread segment, and the
// memory budgets in Options are streaming ceilings rather than up-front
// size rejections — a 100-megapixel JPEG converts within the default
// 24 MiB decode budget.
//
// Services converting many files should hold a Codec, which pools the
// model tables, row buffers, and scratch that dominate per-call memory,
// as the deployed blockservers did:
//
//	codec := lepton.NewCodec()
//	for _, f := range files {
//		res, err := codec.Compress(f, nil) // identical output, far fewer allocations
//		...
//	}
//
// The package-level functions are thin wrappers over one shared default
// codec.
//
// # Contexts (API v2)
//
// Every conversion has a context-taking form — CompressCtx, DecompressCtx,
// CompressChunksFromCtx, and so on — and the codec observes cancellation
// mid-conversion, at every block row of every thread segment, not just
// between requests. A server whose client disconnects, or whose deadline
// expires, stops burning CPU within one row checkpoint and gets ctx.Err()
// back (errors.Is context.Canceled / context.DeadlineExceeded). An aborted
// conversion recycles its pooled state exactly as a completed one does, so
// the codec remains safe to reuse and its output stays byte-identical:
//
//	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
//	defer cancel()
//	res, err := codec.CompressCtx(ctx, jpegBytes, nil)
//
// The non-ctx methods are kept as thin context.Background() wrappers, so
// existing callers compile unchanged.
//
// # Storage
//
// Store is the content-addressed chunk store with the paper's §5.7 safety
// mechanisms (round-trip admission, checksums, deflate fallback, safety
// net, shutoff switch); see NewStore. The blockserver network service in
// internal/server drives the same codec and store over a socket protocol
// and drains gracefully via its Shutdown(ctx).
//
// Files the codec cannot handle (progressive JPEG, CMYK, corrupt data, ...)
// are rejected with a classified Reason; callers typically fall back to
// generic compression, as production did. Payloads that are not Lepton
// containers at all are rejected by the decompress functions with an error
// wrapping ErrNotLepton.
package lepton

import (
	"context"
	"errors"
	"fmt"
	"io"

	"lepton/internal/chunk"
	"lepton/internal/core"
	"lepton/internal/jpeg"
	"lepton/internal/model"
)

// Reason classifies why an input was rejected, matching the paper's §6.2
// exit-code taxonomy.
type Reason = jpeg.Reason

// Rejection reasons.
const (
	ReasonNone        = jpeg.ReasonNone
	ReasonProgressive = jpeg.ReasonProgressive
	ReasonUnsupported = jpeg.ReasonUnsupported
	ReasonNotImage    = jpeg.ReasonNotImage
	ReasonCMYK        = jpeg.ReasonCMYK
	ReasonMemDecode   = jpeg.ReasonMemDecode
	ReasonMemEncode   = jpeg.ReasonMemEncode
	ReasonChromaSub   = jpeg.ReasonChromaSub
	ReasonACRange     = jpeg.ReasonACRange
	ReasonRoundtrip   = jpeg.ReasonRoundtrip
	ReasonTruncated   = jpeg.ReasonTruncated
)

// ReasonOf extracts the rejection reason from an error returned by this
// package, or ReasonUnsupported for untyped errors, or ReasonNone for nil.
func ReasonOf(err error) Reason { return jpeg.ReasonOf(err) }

// Options tunes compression. The zero value (or nil) is the deployed
// production configuration.
type Options struct {
	// Threads forces the number of thread segments (1..64); 0 selects by
	// file size, matching the paper's cutoffs (Figures 7-8).
	Threads int
	// SingleModel is the "Lepton 1-way" configuration: one model adapted
	// across the whole image for maximum compression, single-threaded
	// decode.
	SingleModel bool
	// Verify decodes the output and compares it byte-for-byte against the
	// input before returning (production admission control, §5.7).
	Verify bool
	// CollectStats fills Result.ClassBits/OriginalClassBits (Figure 4).
	CollectStats bool
	// DisableEdgePrediction / DisableDCGradient turn off the two headline
	// predictors (§4.3 ablations).
	DisableEdgePrediction bool
	DisableDCGradient     bool
	// MemDecodeBudget / MemEncodeBudget bound streamed coefficient memory
	// in bytes; 0 selects the deployed limits (24 MiB / 178 MiB). The
	// decode budget bounds the per-segment row windows (scaling with
	// image width and thread count, not pixel count); the encode budget
	// additionally caps the decoded rows held in flight ahead of the
	// segment coders. Images whose windows cannot fit are rejected with
	// ReasonMemDecode; everything else streams.
	MemDecodeBudget int64
	MemEncodeBudget int64
	// AllowProgressive enables compression of spectral-selection
	// progressive JPEGs. The deployed system kept this off "for
	// simplicity" (§6.2) even though the binary could handle them;
	// successive-approximation files remain rejected either way.
	AllowProgressive bool
	// AllowCMYK enables four-component (CMYK) files, the paper's "extra
	// model for the 4th color channel" — likewise off in production.
	AllowCMYK bool
	// DisableSeekIndex omits the per-MCU-row seek index normally appended
	// to baseline containers. Without it DecompressRange falls back to a
	// full decode; the container reproduces the pre-index format byte for
	// byte.
	DisableSeekIndex bool
}

func (o *Options) coreOptions() core.EncodeOptions {
	if o == nil {
		return core.EncodeOptions{}
	}
	flags := model.Flags{
		EdgePrediction: !o.DisableEdgePrediction,
		DCGradient:     !o.DisableDCGradient,
	}
	return core.EncodeOptions{
		Flags:            &flags,
		ForceSegments:    o.Threads,
		SingleModel:      o.SingleModel,
		VerifyRoundtrip:  o.Verify,
		CollectStats:     o.CollectStats,
		MemDecodeBudget:  o.MemDecodeBudget,
		MemEncodeBudget:  o.MemEncodeBudget,
		AllowProgressive: o.AllowProgressive,
		AllowCMYK:        o.AllowCMYK,
		DisableSeekIndex: o.DisableSeekIndex,
	}
}

// Result holds compression output and accounting.
type Result struct {
	// Compressed is the Lepton container.
	Compressed []byte
	// Threads is the thread-segment count used.
	Threads int
	// ClassBits / OriginalClassBits break the compressed and original scan
	// down by coefficient class (7x7, 7x1/1x7, DC) when CollectStats was
	// set; see Figure 4.
	ClassBits         [model.NumClasses]float64
	OriginalClassBits [model.NumClasses]int64
	// HeaderOriginal is the verbatim JPEG header size in bytes.
	HeaderOriginal int
	// ContainerOverhead is the container size minus the arithmetic
	// streams: the zlib-compressed header plus format framing.
	ContainerOverhead int
}

// Codec is a reusable compression pipeline. It owns pools for the model
// statistic-bin tables, coefficient row buffers, and per-segment scratch
// that dominate a conversion's allocations, so a long-lived codec serving
// many files reuses that memory instead of re-allocating it per call — the
// shape of the paper's blockserver deployment, where per-request memory
// was the binding constraint (§6.2). Output is byte-identical to the
// one-shot package functions. A Codec is safe for concurrent use.
type Codec struct {
	core *core.Codec
}

// NewCodec returns a reusable codec with empty pools.
func NewCodec() *Codec { return &Codec{core: core.NewCodec()} }

// CoeffMemStats reports the process-wide streamed coefficient-row memory:
// bytes currently held by in-flight conversions and the high-water mark —
// the working set the §5.1 row-window ceiling bounds, as actually
// observed. Monitoring loops (see blockserverd's -debug-addr) read it to
// watch production memory behavior; tests assert against it.
func CoeffMemStats() (inUse, peak int64) { return core.CoeffMemStats() }

// ResetCoeffMemPeak clears the coefficient-memory high-water mark, e.g. at
// a monitoring interval boundary.
func ResetCoeffMemPeak() { core.ResetCoeffMemPeak() }

// defaultCodec backs the package-level convenience functions, so even
// casual callers get steady-state pooling.
var defaultCodec = NewCodec()

// Compress compresses one whole baseline JPEG file. opts may be nil.
func (c *Codec) Compress(data []byte, opts *Options) (*Result, error) {
	return c.CompressCtx(context.Background(), data, opts)
}

// CompressCtx compresses one whole baseline JPEG file under a context.
// Cancellation is observed mid-conversion — every thread segment checks the
// context at each block row — so an abandoned request aborts within one
// checkpoint and returns ctx.Err(). The codec's pooled state is recycled as
// on success; subsequent conversions on the same codec produce byte-identical
// output. opts may be nil.
func (c *Codec) CompressCtx(ctx context.Context, data []byte, opts *Options) (*Result, error) {
	res, err := c.core.EncodeCtx(ctx, data, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Result{
		Compressed:        res.Compressed,
		Threads:           res.Segments,
		ClassBits:         res.ClassBits,
		OriginalClassBits: res.OriginalClassBits,
		HeaderOriginal:    res.HeaderOriginal,
		ContainerOverhead: res.HeaderCompressed,
	}, nil
}

// CompressTo compresses data and writes the container to w, returning the
// accounting Result with Compressed left nil.
func (c *Codec) CompressTo(w io.Writer, data []byte, opts *Options) (*Result, error) {
	return c.CompressToCtx(context.Background(), w, data, opts)
}

// CompressToCtx is CompressTo under a context (see CompressCtx).
func (c *Codec) CompressToCtx(ctx context.Context, w io.Writer, data []byte, opts *Options) (*Result, error) {
	res, err := c.core.EncodeToCtx(ctx, w, data, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Result{
		Threads:           res.Segments,
		ClassBits:         res.ClassBits,
		OriginalClassBits: res.OriginalClassBits,
		HeaderOriginal:    res.HeaderOriginal,
		ContainerOverhead: res.HeaderCompressed,
	}, nil
}

// Decompress reconstructs the exact original bytes of a compressed file or
// chunk. A payload without the Lepton magic is rejected with an error
// wrapping ErrNotLepton.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressCtx(context.Background(), comp)
}

// DecompressCtx is Decompress under a context: cancellation aborts the
// arithmetic decode at the next block-row checkpoint in every segment.
func (c *Codec) DecompressCtx(ctx context.Context, comp []byte) ([]byte, error) {
	if err := checkMagic(comp); err != nil {
		return nil, err
	}
	return c.core.DecodeCtx(ctx, comp, 0)
}

// DecompressTo streams the reconstruction to w with low time-to-first-byte:
// output is written segment by segment as decoding completes (§3.4).
func (c *Codec) DecompressTo(w io.Writer, comp []byte) error {
	return c.DecompressToCtx(context.Background(), w, comp)
}

// DecompressToCtx is DecompressTo under a context. A cancelled decode may
// already have streamed part of the reconstruction into w.
func (c *Codec) DecompressToCtx(ctx context.Context, w io.Writer, comp []byte) error {
	if err := checkMagic(comp); err != nil {
		return err
	}
	return c.core.DecodeToCtx(ctx, w, comp, 0)
}

// DecompressRange reconstructs exactly the byte range [off, off+n) of the
// original file — clamped to the file size — without decoding the rest.
// Baseline containers carry a per-MCU-row seek index (see Options.
// DisableSeekIndex), so a small read out of a large file costs roughly one
// thread segment of arithmetic decoding: header and trailer bytes come
// from the stored verbatim copies, scan bytes from re-encoding only the
// MCU rows the range overlaps. Progressive and CMYK containers, and legacy
// containers without an index, are served by a full decode that discards
// the bytes outside the range — always correct, only slower (the causes
// are counted in RangeStats).
func (c *Codec) DecompressRange(comp []byte, off, n int64) ([]byte, error) {
	return c.DecompressRangeCtx(context.Background(), comp, off, n)
}

// DecompressRangeCtx is DecompressRange under a context.
func (c *Codec) DecompressRangeCtx(ctx context.Context, comp []byte, off, n int64) ([]byte, error) {
	if err := checkMagic(comp); err != nil {
		return nil, err
	}
	return c.core.DecodeRangeCtx(ctx, comp, off, n, 0)
}

// DecompressRangeTo streams the byte range [off, off+n) of the original
// file into w and returns how many bytes it wrote (RangeLength predicts
// it).
func (c *Codec) DecompressRangeTo(w io.Writer, comp []byte, off, n int64) (int64, error) {
	return c.DecompressRangeToCtx(context.Background(), w, comp, off, n)
}

// DecompressRangeToCtx is DecompressRangeTo under a context.
func (c *Codec) DecompressRangeToCtx(ctx context.Context, w io.Writer, comp []byte, off, n int64) (int64, error) {
	if err := checkMagic(comp); err != nil {
		return 0, err
	}
	return c.core.DecodeRangeToCtx(ctx, w, comp, off, n, 0)
}

// Verify round-trips data through compress and decompress and reports
// whether the reconstruction is exact (§5.7 admission control).
func (c *Codec) Verify(data []byte, opts *Options) error {
	return c.VerifyCtx(context.Background(), data, opts)
}

// VerifyCtx is Verify under a context.
func (c *Codec) VerifyCtx(ctx context.Context, data []byte, opts *Options) error {
	o := &Options{}
	if opts != nil {
		cp := *opts
		o = &cp
	}
	o.Verify = true
	_, err := c.CompressCtx(ctx, data, o)
	return err
}

// checkMagic rejects payloads that cannot be Lepton containers before any
// further parsing, so callers can branch on ErrNotLepton with errors.Is.
func checkMagic(comp []byte) error {
	if !core.IsLepton(comp) {
		return fmt.Errorf("%w (%d-byte payload)", ErrNotLepton, len(comp))
	}
	return nil
}

// Compress compresses one whole baseline JPEG file via the default codec.
// opts may be nil.
func Compress(data []byte, opts *Options) (*Result, error) {
	return defaultCodec.Compress(data, opts)
}

// CompressCtx compresses via the default codec under a context.
func CompressCtx(ctx context.Context, data []byte, opts *Options) (*Result, error) {
	return defaultCodec.CompressCtx(ctx, data, opts)
}

// Decompress reconstructs the exact original bytes of a compressed file or
// chunk. A payload without the Lepton magic is rejected with an error
// wrapping ErrNotLepton.
func Decompress(comp []byte) ([]byte, error) {
	return defaultCodec.Decompress(comp)
}

// DecompressCtx decompresses via the default codec under a context.
func DecompressCtx(ctx context.Context, comp []byte) ([]byte, error) {
	return defaultCodec.DecompressCtx(ctx, comp)
}

// DecompressTo streams the reconstruction to w with low time-to-first-byte:
// output is written segment by segment as decoding completes (§3.4).
func DecompressTo(w io.Writer, comp []byte) error {
	return defaultCodec.DecompressTo(w, comp)
}

// DecompressRange reconstructs exactly the byte range [off, off+n) of the
// original file via the default codec; see Codec.DecompressRange.
func DecompressRange(comp []byte, off, n int64) ([]byte, error) {
	return defaultCodec.DecompressRange(comp, off, n)
}

// DecompressRangeCtx decompresses a byte range via the default codec under
// a context.
func DecompressRangeCtx(ctx context.Context, comp []byte, off, n int64) ([]byte, error) {
	return defaultCodec.DecompressRangeCtx(ctx, comp, off, n)
}

// RangeLength returns how many bytes DecompressRange(comp, off, n) will
// produce — the clamp of [off, off+n) to the decompressed size — without
// decoding anything.
func RangeLength(comp []byte, off, n int64) (int64, error) {
	if err := checkMagic(comp); err != nil {
		return 0, err
	}
	return core.RangeLength(comp, off, n)
}

// RangeStats returns cumulative process-wide range-decode counters:
// requests served, indexed fast-path hits, fallbacks to full decode split
// by cause, and thread segments decoded by the fast path.
func RangeStats() map[string]int64 { return core.RangeStats() }

// DecompressToCtx streams the reconstruction via the default codec under a
// context.
func DecompressToCtx(ctx context.Context, w io.Writer, comp []byte) error {
	return defaultCodec.DecompressToCtx(ctx, w, comp)
}

// IsCompressed reports whether data begins with the Lepton magic number
// (0xCF 0x84, A.1).
func IsCompressed(data []byte) bool { return core.IsLepton(data) }

// ChunkSize is the Dropbox block size: files are stored as independent
// chunks of at most this many bytes (§1).
const ChunkSize = chunk.DefaultChunkSize

// ChunkOptions tunes chunked compression.
type ChunkOptions struct {
	// ChunkSize in bytes; 0 means ChunkSize (4 MiB).
	ChunkSize int
	// Verify round-trips every chunk before returning.
	Verify bool
	// Threads forces the per-chunk segment count; 0 selects by size.
	Threads int
	// BufferLimit bounds how much of a stream CompressChunksFrom holds in
	// memory; 0 means the deployed encode budget. Larger streams are
	// chunk-compressed incrementally in raw mode with O(ChunkSize) memory.
	BufferLimit int64
	// DisableSeekIndex omits the per-chunk seek index (see
	// Options.DisableSeekIndex).
	DisableSeekIndex bool
}

func (o *ChunkOptions) chunkOptions(c *core.Codec) chunk.Options {
	co := chunk.Options{Codec: c}
	if o != nil {
		co.ChunkSize = o.ChunkSize
		co.VerifyRoundtrip = o.Verify
		co.SegmentsPerChunk = o.Threads
		co.BufferLimit = o.BufferLimit
		co.DisableSeekIndex = o.DisableSeekIndex
	}
	return co
}

// CompressChunks splits data at fixed chunk boundaries and compresses each
// chunk independently. Any chunk — including chunks beginning mid-scan or
// mid-Huffman-symbol — can later be decompressed on its own with
// Decompress/DecompressChunk. Inputs Lepton cannot handle come back as
// deflate-compressed raw chunks rather than an error.
func (c *Codec) CompressChunks(data []byte, opts *ChunkOptions) ([][]byte, error) {
	return c.CompressChunksCtx(context.Background(), data, opts)
}

// CompressChunksCtx is CompressChunks under a context, checked between
// chunks and inside every chunk's segment encode.
func (c *Codec) CompressChunksCtx(ctx context.Context, data []byte, opts *ChunkOptions) ([][]byte, error) {
	return chunk.CompressCtx(ctx, data, opts.chunkOptions(c.core))
}

// CompressChunksFrom chunk-compresses the stream r incrementally, calling
// emit with each finished chunk in order, so a file need not be held in
// memory whole: streams within the buffer limit produce output identical
// to CompressChunks, and larger streams — beyond the encoder's memory
// admission budget anyway — deflate through in constant space.
func (c *Codec) CompressChunksFrom(r io.Reader, opts *ChunkOptions, emit func(chunk []byte) error) error {
	return c.CompressChunksFromCtx(context.Background(), r, opts, emit)
}

// CompressChunksFromCtx is CompressChunksFrom under a context, checked
// before each chunk is read, compressed, and emitted.
func (c *Codec) CompressChunksFromCtx(ctx context.Context, r io.Reader, opts *ChunkOptions, emit func(chunk []byte) error) error {
	return chunk.CompressFromCtx(ctx, r, opts.chunkOptions(c.core), emit)
}

// DecompressChunk reconstructs one chunk's original bytes, independently of
// every other chunk. A payload without the Lepton magic is rejected with an
// error wrapping ErrNotLepton.
func (c *Codec) DecompressChunk(chunkData []byte) ([]byte, error) {
	return c.DecompressChunkCtx(context.Background(), chunkData)
}

// DecompressChunkCtx is DecompressChunk under a context.
func (c *Codec) DecompressChunkCtx(ctx context.Context, chunkData []byte) ([]byte, error) {
	if err := checkMagic(chunkData); err != nil {
		return nil, err
	}
	return c.core.DecodeCtx(ctx, chunkData, 0)
}

// CompressChunks splits data into independently decompressible chunks via
// the default codec.
func CompressChunks(data []byte, opts *ChunkOptions) ([][]byte, error) {
	return defaultCodec.CompressChunks(data, opts)
}

// CompressChunksFrom streams chunked compression via the default codec.
func CompressChunksFrom(r io.Reader, opts *ChunkOptions, emit func(chunk []byte) error) error {
	return defaultCodec.CompressChunksFrom(r, opts, emit)
}

// DecompressChunk reconstructs one chunk's original bytes, independently of
// every other chunk.
func DecompressChunk(chunkData []byte) ([]byte, error) {
	return defaultCodec.DecompressChunk(chunkData)
}

// ReassembleChunks decompresses a chunk sequence and concatenates the
// results into the original file.
func (c *Codec) ReassembleChunks(chunks [][]byte) ([]byte, error) {
	return c.ReassembleChunksCtx(context.Background(), chunks)
}

// ReassembleChunksCtx is ReassembleChunks under a context, checked per
// chunk.
func (c *Codec) ReassembleChunksCtx(ctx context.Context, chunks [][]byte) ([]byte, error) {
	for i, ch := range chunks {
		if err := checkMagic(ch); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
	}
	return chunk.ReassembleCtx(ctx, c.core, chunks)
}

// ReassembleChunks decompresses a chunk sequence via the default codec.
func ReassembleChunks(chunks [][]byte) ([]byte, error) {
	return defaultCodec.ReassembleChunks(chunks)
}

// Verify round-trips data through compress and decompress and reports
// whether the reconstruction is exact. It is the admission check production
// ran before accepting any chunk into storage (§5.7).
func Verify(data []byte, opts *Options) error {
	return defaultCodec.Verify(data, opts)
}

// ErrNotLepton is returned (wrapped, errors.Is-able) by Decompress,
// DecompressTo, DecompressChunk, and ReassembleChunks — and their Ctx
// variants — when a payload lacks the Lepton magic (0xCF 0x84).
var ErrNotLepton = errors.New("lepton: not a Lepton container")
