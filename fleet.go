package lepton

import (
	"context"
	"time"

	"lepton/internal/server"
	"lepton/internal/store"
)

// Fleet is a client-side router over a set of live blockservers — the
// multi-node deployment of paper §5.5 as an API. It keeps pools of
// persistent connections per node, picks targets by the power of two
// random choices using real load probes (both candidates probed
// concurrently under one shared context), retries transport failures on a
// different node with the failed one excluded, optionally hedges a second
// request after a latency threshold (first response wins, the loser is
// cancelled through its context), and runs a health loop that evicts
// unreachable nodes and re-admits them once probes succeed again.
//
//	fleet, err := lepton.DialFleet([]string{
//		"tcp:10.0.0.5:7731", "tcp:10.0.0.6:7731", "tcp:10.0.0.7:7731",
//	}, nil)
//	comp, err := fleet.Compress(ctx, jpegBytes)
//	orig, err := fleet.Decompress(ctx, comp)
//
// Application-level rejections (a corrupt payload, say) are returned
// immediately without retries: the server rejected the request
// deterministically, so another node would too. A Fleet is safe for
// concurrent use; Close releases the health loop and every pooled
// connection.
type Fleet struct {
	f *server.Fleet
}

// FleetOptions tunes routing. The zero value (or nil) selects the
// defaults: 250ms probe rounds, 2s dials, 500ms health probes, hedging
// off, one attempt per node.
type FleetOptions struct {
	// ProbeTimeout bounds one power-of-two probe round; both candidate
	// probes share it.
	ProbeTimeout time.Duration
	// DialTimeout bounds establishing a new connection to a node.
	DialTimeout time.Duration
	// HedgeAfter, when positive, launches a second copy of a request on a
	// different node if the first has not answered within this duration.
	HedgeAfter time.Duration
	// HealthInterval is the eviction/re-admission probe period; negative
	// disables the loop. Disabling it makes eviction sticky until the
	// node answers a probe or serves a request, which routed traffic only
	// causes once no healthy node remains — leave the loop on unless you
	// drive recovery yourself.
	HealthInterval time.Duration
	// MaxIdlePerNode caps pooled idle connections per node.
	MaxIdlePerNode int
	// MaxAttempts bounds how many nodes one request may try; 0 means one
	// attempt per node.
	MaxAttempts int
	// Seed fixes the candidate-selection rng for reproducible runs; 0
	// seeds from the clock.
	Seed int64
	// Logf, when set, receives routing diagnostics (evictions,
	// readmissions, retries).
	Logf func(format string, args ...any)
}

// DialFleet builds a router over addrs ("tcp:<host:port>" or
// "unix:<path>") and starts its health loop. opts may be nil. Callers own
// Close.
func DialFleet(addrs []string, opts *FleetOptions) (*Fleet, error) {
	var so *server.FleetOptions
	if opts != nil {
		so = &server.FleetOptions{
			ProbeTimeout:   opts.ProbeTimeout,
			DialTimeout:    opts.DialTimeout,
			HedgeAfter:     opts.HedgeAfter,
			HealthInterval: opts.HealthInterval,
			MaxIdlePerNode: opts.MaxIdlePerNode,
			MaxAttempts:    opts.MaxAttempts,
			Seed:           opts.Seed,
			Logf:           opts.Logf,
		}
	}
	f, err := server.NewFleet(addrs, so)
	if err != nil {
		return nil, err
	}
	return &Fleet{f: f}, nil
}

// Compress routes one whole-file compression to the least-loaded probed
// node and returns the Lepton container (or a raw-mode fallback container
// for unsupported inputs, matching the single-server contract).
func (fl *Fleet) Compress(ctx context.Context, data []byte) ([]byte, error) {
	return fl.f.Compress(ctx, data)
}

// Decompress routes one container reconstruction through the fleet.
func (fl *Fleet) Decompress(ctx context.Context, comp []byte) ([]byte, error) {
	return fl.f.Decompress(ctx, comp)
}

// GetRange asks the fleet for bytes [off, off+n) of the reconstruction of
// the chunk stored under h, clamped at the chunk's size, without placement
// knowledge: nodes are picked by load, hedged like any routed request, and
// a node that does not hold the chunk is excluded and the read retried
// elsewhere. The serving node decodes only the segments the range touches
// when the chunk carries a seek index. Callers that know placement should
// prefer FleetStore.GetRange, which tries the replicas directly.
func (fl *Fleet) GetRange(ctx context.Context, h ChunkHash, off, n int64) ([]byte, error) {
	return fl.f.GetRangeAny(ctx, h, off, n)
}

// Nodes returns every configured node address, up or down.
func (fl *Fleet) Nodes() []string { return fl.f.Nodes() }

// ProbeNode asks one node for its current in-flight load on a pooled
// connection — the per-node utilization signal the load harness samples
// and the backfill engine yields to. A node that answers is re-admitted if
// it had been evicted.
func (fl *Fleet) ProbeNode(ctx context.Context, addr string) (uint32, error) {
	return fl.f.ProbeNode(ctx, addr)
}

// NodeDown reports whether addr is currently evicted.
func (fl *Fleet) NodeDown(addr string) bool { return fl.f.NodeDown(addr) }

// StatsSnapshot returns the router's counters (requests, retries, hedges
// and hedge wins, evictions, readmissions, probe and dial failures) plus
// the current up/down node split, ready for expvar/JSON export.
func (fl *Fleet) StatsSnapshot() map[string]int64 { return fl.f.StatsSnapshot() }

// Close stops the health loop and closes every pooled connection.
func (fl *Fleet) Close() error { return fl.f.Close() }

// FleetStoreOptions configures a FleetStore. The zero value (or nil) is
// replication 2 (capped at the node count), 4-MiB chunks, and pooled codec
// state shared with the package-level conversion functions.
type FleetStoreOptions struct {
	// Replication is R, the number of distinct nodes each chunk is placed
	// on.
	Replication int
	// ChunkSize for splitting files; 0 means ChunkSize (4 MiB).
	ChunkSize int
	// Codec supplies the pooled local conversion pipeline (the codec runs
	// client side, §7); nil shares the package's default codec.
	Codec *Codec
}

// FleetStore is the distributed counterpart of Store: content-addressed
// chunks placed on R fleet nodes by consistent hashing, compressed client
// side (only compressed bytes cross the network — the §7 bandwidth
// saving), verified against their content hash on every read, and
// read-repaired onto replicas found missing or corrupt. Placement depends
// only on the configured node list, so every client of the same fleet
// computes the same replicas and a node's death moves no data.
//
// A FleetStore is safe for concurrent use. All operations take a context.
type FleetStore struct {
	r *store.Remote
}

// FleetStoreCounters is a snapshot of a FleetStore's operational
// statistics.
type FleetStoreCounters = store.RemoteCounters

// NewFleetStore builds a distributed store over an existing Fleet's nodes.
// opts may be nil.
func NewFleetStore(fl *Fleet, opts *FleetStoreOptions) (*FleetStore, error) {
	repl := 0
	if opts != nil {
		repl = opts.Replication
	}
	r, err := store.NewRemote(fl.f, repl)
	if err != nil {
		return nil, err
	}
	codec := defaultCodec
	if opts != nil {
		r.ChunkSize = opts.ChunkSize
		if opts.Codec != nil {
			codec = opts.Codec
		}
	}
	r.Codec = codec.core
	return &FleetStore{r: r}, nil
}

// PutFile chunks and compresses a file locally (with the §5.7 round-trip
// verification; inputs Lepton cannot hold fall back to raw chunks) and
// places every chunk on its R replicas. It succeeds when each chunk
// reached at least one replica; unreachable replicas are healed later by
// read-repair.
func (st *FleetStore) PutFile(ctx context.Context, data []byte) (FileRef, error) {
	return st.r.PutFile(ctx, data)
}

// GetFile reassembles a file from its reference, reading each chunk from
// the first healthy replica.
func (st *FleetStore) GetFile(ctx context.Context, ref FileRef) ([]byte, error) {
	return st.r.GetFile(ctx, ref)
}

// Put places one already-compressed chunk on its replicas and returns its
// content address.
func (st *FleetStore) Put(ctx context.Context, compressed []byte) (ChunkHash, error) {
	return st.r.Put(ctx, compressed)
}

// Get fetches and decompresses one chunk.
func (st *FleetStore) Get(ctx context.Context, h ChunkHash) ([]byte, error) {
	return st.r.Get(ctx, h)
}

// GetCompressed fetches one chunk's stored compressed bytes without
// decoding them.
func (st *FleetStore) GetCompressed(ctx context.Context, h ChunkHash) ([]byte, error) {
	return st.r.GetCompressed(ctx, h)
}

// GetRange fetches bytes [off, off+n) of one chunk's reconstruction,
// clamped at the chunk's size, from the first replica that serves it: the
// replica decodes only the segments the range touches (seek-indexed
// containers), so a small read of a large chunk costs one segment, not one
// chunk. When no replica serves the range the chunk is fetched whole,
// verified, and range-decoded locally.
func (st *FleetStore) GetRange(ctx context.Context, h ChunkHash, off, n int64) ([]byte, error) {
	return st.r.GetRange(ctx, h, off, n)
}

// GetFileRange reads bytes [off, off+n) of a stored file, clamped at its
// size, touching only the chunks — and within each chunk only the decoded
// segments — that the range overlaps. The store's ChunkSize must match the
// one the file was stored under. This is the ranged-download primitive an
// HTTP gateway maps Range: requests onto (see examples/gateway).
func (st *FleetStore) GetFileRange(ctx context.Context, ref FileRef, off, n int64) ([]byte, error) {
	return st.r.GetFileRange(ctx, ref, off, n)
}

// Placement returns the replica addresses that should hold h, in read
// order.
func (st *FleetStore) Placement(h ChunkHash) []string { return st.r.Placement(h) }

// Counters returns a snapshot of operational statistics.
func (st *FleetStore) Counters() FleetStoreCounters { return st.r.Counters() }

// StatsSnapshot returns the counters as a flat name→value map, the same
// shape Fleet.StatsSnapshot and the per-node /debug/vars export — ready to
// register as an admin-plane source.
func (st *FleetStore) StatsSnapshot() map[string]int64 { return st.r.Counters().Map() }

// RemoveNode permanently removes addr from the placement ring — for a
// node that is gone for good, not merely down (eviction handles that).
// Placement of its chunks moves to the next ring nodes; run AntiEntropy
// (or wait for the background sweep) to copy the data there and restore
// replication R.
func (st *FleetStore) RemoveNode(addr string) { st.r.RemoveNode(addr) }

// AntiEntropy runs one full healing sweep: every node's chunk listing is
// compared against ring placement and chunks below replication R are
// copied to the replicas missing them, without any client read involved.
// Returns the number of replica copies made.
func (st *FleetStore) AntiEntropy(ctx context.Context) (int, error) {
	return st.r.AntiEntropy(ctx)
}

// StartAntiEntropy launches a background AntiEntropy sweep every interval
// (0 means one minute) and returns its stop function.
func (st *FleetStore) StartAntiEntropy(interval time.Duration) (stop func()) {
	return st.r.StartAntiEntropy(interval)
}

// Reannounce re-integrates a warm-restarted node: its chunk listing
// proves what its disk still holds (held), and anything placement
// assigned to it or its peers that is missing gets copied (repaired). A
// node restarted against an intact data dir reports repaired == 0.
func (st *FleetStore) Reannounce(ctx context.Context, addr string) (held, repaired int, err error) {
	return st.r.Reannounce(ctx, addr)
}
