module lepton

go 1.24
