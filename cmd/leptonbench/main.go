// Command leptonbench regenerates every table and figure of the paper's
// evaluation (§4, §5, §6.2) against this repository's implementation. Each
// experiment prints the series or table the paper plots; EXPERIMENTS.md
// records paper-vs-measured values.
//
// Usage:
//
//	leptonbench -fig 1        # Figure 1: savings vs decompression speed
//	leptonbench -fig 9        # Figure 9: outsourcing concurrency
//	leptonbench -ablation     # §4.3 component ablations
//	leptonbench -errors       # §6.2 exit-code table
//	leptonbench -cost         # §5.6.1 cost effectiveness
//	leptonbench -outsource    # §5.5 unix-vs-TCP overhead (real sockets)
//	leptonbench -all          # everything
//	flags: -n <corpus size> -seed <seed> -quick
//	       -cpuprofile <file>  # write a pprof CPU profile of the run
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/pprof"

	"lepton/internal/imagegen"
)

type options struct {
	n     int
	seed  int64
	quick bool
}

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (1-14)")
	ablation := flag.Bool("ablation", false, "§4.3 component ablation table")
	errorsT := flag.Bool("errors", false, "§6.2 exit-code table")
	cost := flag.Bool("cost", false, "§5.6.1 cost effectiveness")
	outsource := flag.Bool("outsource", false, "§5.5 socket overhead measurement")
	extensions := flag.Bool("extensions", false, "opt-in progressive/CMYK capabilities")
	all := flag.Bool("all", false, "run everything")
	n := flag.Int("n", 40, "corpus size for codec experiments")
	seed := flag.Int64("seed", 1, "corpus seed")
	quick := flag.Bool("quick", false, "smaller deployments sims")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	benchJSON := flag.String("bench-json", "",
		"measure the Figure 1/2 codec hot paths and the disk chunk store"+
			" (put/get/replay) and write a machine-readable artifact"+
			" (conventionally BENCH_<pr>.json) to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opt := options{n: *n, seed: *seed, quick: *quick}
	ran := false
	run := func(cond bool, f func(options)) {
		if cond || *all {
			f(opt)
			ran = true
		}
	}
	run(*fig == 1, figure1)
	run(*fig == 2, figure2)
	run(*fig == 3, figure3)
	run(*fig == 4, figure4)
	run(*fig == 5, figure5)
	run(*fig == 6, figure6)
	run(*fig == 7, figure7)
	run(*fig == 8, figure8)
	run(*fig == 9, figure9)
	run(*fig == 10, figure10)
	run(*fig == 11, figure11)
	run(*fig == 12, figure12)
	run(*fig == 13, figure13)
	run(*fig == 14, figure14)
	run(*ablation, ablationTable)
	run(*errorsT, errorTable)
	run(*cost, costTable)
	run(*outsource, outsourceOverhead)
	run(*extensions, extensionsTable)
	if *benchJSON != "" {
		writeBenchJSON(*benchJSON)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// corpus generates n deterministic JPEGs across a spread of dimensions
// (roughly 10 KB - 700 KB at default settings).
func corpus(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		w := 96 + rng.Intn(900)
		h := 96 + rng.Intn(700)
		data, err := imagegen.Generate(rng.Int63(), w, h)
		if err != nil {
			panic(err)
		}
		out = append(out, data)
	}
	return out
}

// corpusLarge generates bigger files (roughly 100 KiB - 1.5 MiB), matching
// Figure 1's corpus range, where multithreaded decode pays off.
func corpusLarge(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		w := 700 + rng.Intn(1400)
		h := w * 3 / 4
		data, err := imagegen.Generate(rng.Int63(), w, h)
		if err != nil {
			panic(err)
		}
		out = append(out, data)
	}
	return out
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
