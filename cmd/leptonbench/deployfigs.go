package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lepton/internal/cluster"
	"lepton/internal/imagegen"
	"lepton/internal/server"
	"lepton/internal/stats"
)

// figure5: weekly encode/decode rates vs weekly minimum.
func figure5(opt options) {
	header("Figure 5: weekday vs weekend coding events (vs weekly min)")
	dec, enc := cluster.Figure5(opt.seed)
	t := &stats.Table{Header: []string{"day", "decodes (daily mean)", "encodes (daily mean)", "ratio"}}
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	for d := 0; d < 7; d++ {
		var dv, ev float64
		for h := 0; h < 24; h++ {
			dv += dec.Vals[d*24+h]
			ev += enc.Vals[d*24+h]
		}
		dv /= 24
		ev /= 24
		t.Add(days[d], stats.F(dv, 2), stats.F(ev, 2), stats.F(dv/ev, 2))
	}
	fmt.Print(t)
	fmt.Println("paper: weekday decode:encode ~1.5, weekend ~1.0; encode rate flat across the week.")
}

// figure9: hourly p99 concurrent conversions per strategy.
func figure9(opt options) {
	header("Figure 9: p99 concurrent Lepton processes by outsourcing strategy (threshold 4)")
	rows := cluster.Figure9(opt.seed, 4)
	t := &stats.Table{Header: []string{"hour", rows[0].Strategy.String(), rows[1].Strategy.String(), rows[2].Strategy.String()}}
	for h := 0; h < len(rows[0].Hours); h += 2 {
		t.Add(stats.F(rows[0].Hours[h], 0),
			stats.F(rows[0].P99[h], 1),
			stats.F(rows[1].P99[h], 1),
			stats.F(rows[2].P99[h], 1))
	}
	fmt.Print(t)
	fmt.Println("paper: control peaks ~15-25 concurrent; outsourcing keeps p99 near the threshold.")
}

// figure10: latency percentiles near-peak and at peak.
func figure10(opt options) {
	header("Figure 10: compression latency percentiles by strategy and threshold")
	rows := cluster.Figure10(opt.seed)
	t := &stats.Table{Header: []string{"strategy", "thr",
		"near p50", "near p95", "near p99", "peak p50", "peak p95", "peak p99"}}
	for _, r := range rows {
		thr := stats.I(int64(r.Threshold))
		if r.Strategy == cluster.Control {
			thr = "-"
		}
		t.Add(r.Strategy.String(), thr,
			stats.F(r.NearPeak.P50, 2), stats.F(r.NearPeak.P95, 2), stats.F(r.NearPeak.P99, 2),
			stats.F(r.Peak.P50, 2), stats.F(r.Peak.P95, 2), stats.F(r.Peak.P99, 2))
	}
	fmt.Print(t)
	fmt.Println("paper: outsourcing cuts peak p99 from 1.63 s to 1.08 s (-34%); dedicated best at peak;")
	fmt.Println("       to-self also lowers p50 by rebalancing within the cluster.")
}

// figure11: backfill power trace with the outage.
func figure11(opt options) {
	header("Figure 11: datacenter power and backfill rate (outage mid-trace)")
	cfg := cluster.DefaultBackfillConfig()
	samples := cluster.Figure11(cfg)
	t := &stats.Table{Header: []string{"hour", "power kW", "compress/s", "machines"}}
	for i := 0; i < len(samples); i += 20 {
		s := samples[i]
		t.Add(stats.F(s.Hour, 1), stats.F(s.PowerKW, 0), stats.F(s.CompressPerSec, 0), stats.I(int64(s.Machines)))
	}
	fmt.Print(t)
	fmt.Println("paper: backfill ~278 kW and 5,583 chunks/s; disabling it dropped power by 121 kW.")
}

// figure12: THP latency anomaly.
func figure12(opt options) {
	header("Figure 12: hourly decode percentiles; THP disabled at hour 6")
	pts := cluster.Figure12(opt.seed)
	t := &stats.Table{Header: []string{"hour", "p50 s", "p75 s", "p95 s", "p99 s"}}
	for _, p := range pts {
		t.Add(stats.F(p.Hour, 0), stats.F(p.P50, 3), stats.F(p.P75, 3), stats.F(p.P95, 3), stats.F(p.P99, 3))
	}
	fmt.Print(t)
	fmt.Println("paper: p95/p99 collapse when transparent huge pages are disabled (April 13 03:00).")
}

// figure13: decode:encode rollout ramp.
func figure13(opt options) {
	header("Figure 13: decode:encode ratio after rollout")
	days, ratio := cluster.Figure13(84)
	t := &stats.Table{Header: []string{"day", "ratio"}}
	for i := 0; i < len(days); i += 7 {
		t.Add(stats.F(days[i], 0), stats.F(ratio[i], 2))
	}
	fmt.Print(t)
	fmt.Println("paper: ratio climbs from ~0 at rollout toward ~1.5-2 as Lepton content accumulates.")
}

// figure14: months of decode p99 growth.
func figure14(opt options) {
	header("Figure 14: decode latency percentiles across the rollout months (no outsourcing)")
	step := 15
	if opt.quick {
		step = 30
	}
	pts := cluster.Figure14(opt.seed, 120, step)
	t := &stats.Table{Header: []string{"day", "p50 s", "p75 s", "p95 s", "p99 s"}}
	for _, p := range pts {
		t.Add(stats.F(p.Day, 0), stats.F(p.P50, 3), stats.F(p.P75, 3), stats.F(p.P95, 3), stats.F(p.P99, 3))
	}
	fmt.Print(t)
	fmt.Println("paper: p99 builds to multiple seconds over months ('boiling the frog'),")
	fmt.Println("       which motivated the outsourcing system.")
}

// outsourceOverhead measures the §5.5 claim with real sockets: the cost of
// moving a conversion from a local Unix-domain socket to a remote TCP
// socket (paper: 7.9% average overhead).
func outsourceOverhead(opt options) {
	header("§5.5 outsourcing overhead: Unix socket vs TCP (real sockets, loopback)")
	dir, err := os.MkdirTemp("", "leptonbench")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)

	unixBS := &server.Blockserver{}
	unixAddr, err := server.ListenAndServe("unix:"+filepath.Join(dir, "l.sock"), unixBS)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer unixBS.Close()
	tcpBS := &server.Blockserver{}
	tcpAddr, err := server.ListenAndServe("tcp:127.0.0.1:0", tcpBS)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer tcpBS.Close()

	files := corpus(opt.seed, 12)
	bench := func(addr string) float64 {
		// Warm up, then measure.
		for _, f := range files[:2] {
			_, _ = server.Do(addr, server.OpCompress, f, 30*time.Second)
		}
		t0 := time.Now()
		for _, f := range files {
			if _, err := server.Do(addr, server.OpCompress, f, 30*time.Second); err != nil {
				fmt.Println("request error:", err)
			}
		}
		return time.Since(t0).Seconds()
	}
	u := bench(unixAddr)
	tc := bench(tcpAddr)
	fmt.Printf("unix socket: %.3f s for %d conversions\n", u, len(files))
	fmt.Printf("tcp socket:  %.3f s for %d conversions\n", tc, len(files))
	fmt.Printf("overhead:    %.1f%%  (paper: 7.9%% — theirs crossed a datacenter, ours is loopback)\n",
		100*(tc/u-1))
}

var _ = imagegen.Generate // keep import when figures are trimmed
