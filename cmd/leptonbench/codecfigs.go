package main

import (
	"fmt"
	"runtime"
	"time"

	"lepton/internal/baseline"
	"lepton/internal/cluster"
	"lepton/internal/core"
	"lepton/internal/imagegen"
	"lepton/internal/model"
	"lepton/internal/stats"
)

// measure runs a codec over the corpus and reports savings and speed.
type codecResult struct {
	name              string
	savingsPct        []float64 // per file, 0 when rejected
	encMbps, decMbps  []float64
	encSecs, decSecs  []float64
	rejected          int
	bytesIn, bytesOut int64
}

func measureCodec(c baseline.Codec, corpus [][]byte) codecResult {
	r := codecResult{name: c.Name()}
	for _, data := range corpus {
		t0 := time.Now()
		comp, err := c.Compress(data)
		encT := time.Since(t0).Seconds()
		if err != nil {
			// Rejected file: stored uncompressed, zero savings (the paper's
			// Figure 2 includes chunks Lepton cannot compress).
			r.rejected++
			r.savingsPct = append(r.savingsPct, 0)
			r.bytesIn += int64(len(data))
			r.bytesOut += int64(len(data))
			continue
		}
		t1 := time.Now()
		_, derr := c.Decompress(comp)
		decT := time.Since(t1).Seconds()
		if derr != nil {
			r.rejected++
			continue
		}
		mb := float64(len(data)) * 8 / 1e6
		r.savingsPct = append(r.savingsPct, 100*(1-float64(len(comp))/float64(len(data))))
		r.encMbps = append(r.encMbps, mb/encT)
		r.decMbps = append(r.decMbps, mb/decT)
		r.encSecs = append(r.encSecs, encT)
		r.decSecs = append(r.decSecs, decT)
		r.bytesIn += int64(len(data))
		r.bytesOut += int64(len(comp))
	}
	return r
}

func jpegAwareCodecs() []baseline.Codec {
	return []baseline.Codec{
		baseline.Lepton{},
		baseline.Lepton1Way{},
		baseline.PackJPGStyle{},
		baseline.SpecArith{},
		baseline.Rescan{},
	}
}

func allCodecs() []baseline.Codec {
	return append(jpegAwareCodecs(),
		baseline.Flate{Level: 1},
		baseline.Flate{Level: 6},
		baseline.Flate{Level: 9},
		baseline.RC1{},
	)
}

// figure1: compression savings vs decompression speed for the JPEG-aware
// codecs (25th/50th/75th percentile markers, as the paper's diamonds).
func figure1(opt options) {
	header("Figure 1: savings vs decompression speed (JPEG-aware codecs)")
	n := opt.n / 2
	if n < 6 {
		n = 6
	}
	files := corpusLarge(opt.seed, n)
	t := &stats.Table{Header: []string{"codec", "savings% p25", "p50", "p75", "decode Mbps p25", "p50", "p75"}}
	for _, c := range jpegAwareCodecs() {
		r := measureCodec(c, files)
		t.Add(r.name,
			stats.F(stats.Percentile(r.savingsPct, 25), 1),
			stats.F(stats.Percentile(r.savingsPct, 50), 1),
			stats.F(stats.Percentile(r.savingsPct, 75), 1),
			stats.F(stats.Percentile(r.decMbps, 25), 1),
			stats.F(stats.Percentile(r.decMbps, 50), 1),
			stats.F(stats.Percentile(r.decMbps, 75), 1))
	}
	fmt.Print(t)
	fmt.Println("paper: Lepton ~22-23% savings at >100 Mbps; PackJPG same savings ~9x slower;")
	fmt.Println("       MozJPEG-arith ~8-12% savings; JPEGrescan ~8% (progressive half not modeled).")
}

// figure2: savings and encode/decode speed for every codec, over a corpus
// that includes the §6.2 anomaly mix (files Lepton rejects).
func figure2(opt options) {
	header("Figure 2: savings and speed, all codecs (incl. rejected chunks)")
	files := corpus(opt.seed, opt.n)
	files = append(files, cluster.BuildErrorCorpus(opt.seed+1, opt.n/4)...)
	t := &stats.Table{Header: []string{"codec", "savings%", "enc Mbps", "dec Mbps",
		"enc p50 ms", "enc p99 ms", "dec p50 ms", "dec p99 ms", "rejected"}}
	for _, c := range allCodecs() {
		r := measureCodec(c, files)
		t.Add(r.name,
			stats.F(100*(1-float64(r.bytesOut)/float64(r.bytesIn)), 1),
			stats.F(stats.Percentile(r.encMbps, 50), 1),
			stats.F(stats.Percentile(r.decMbps, 50), 1),
			stats.F(stats.Percentile(r.encSecs, 50)*1000, 1),
			stats.F(stats.Percentile(r.encSecs, 99)*1000, 1),
			stats.F(stats.Percentile(r.decSecs, 50)*1000, 1),
			stats.F(stats.Percentile(r.decSecs, 99)*1000, 1),
			stats.I(int64(r.rejected)))
	}
	fmt.Print(t)
	fmt.Println("paper: Lepton 22.4% / Lepton 1-way 23.2% / PackJPG 23.0% / PAQ8PX 24.0% /")
	fmt.Println("       JPEGrescan 8.3% / MozJPEG 12.0% / generic codecs <= 1%.")
}

// figure3: peak memory per codec, sampled while compressing and
// decompressing the largest corpus file.
func figure3(opt options) {
	header("Figure 3: peak memory by codec (heap high-water, MiB)")
	files := corpus(opt.seed, opt.n)
	big := files[0]
	for _, f := range files {
		if len(f) > len(big) {
			big = f
		}
	}
	t := &stats.Table{Header: []string{"codec", "encode MiB", "decode MiB"}}
	for _, c := range allCodecs() {
		var comp []byte
		encPeak := peakHeap(func() {
			comp, _ = c.Compress(big)
		})
		decPeak := 0.0
		if comp != nil {
			decPeak = peakHeap(func() {
				_, _ = c.Decompress(comp)
			})
		}
		t.Add(c.Name(), stats.F(encPeak, 1), stats.F(decPeak, 1))
	}
	fmt.Print(t)
	fmt.Printf("model size: %d bins/channel x 3 channels x 4 B = %.1f MiB per thread segment\n",
		model.BinsPerChannel, float64(3*model.BinsPerChannel*4)/(1<<20))
	fmt.Println("paper: Lepton decode 24 MiB (1-way) / 39 MiB p99 (multithreaded); others 69-192 MiB.")
}

// peakHeap measures the heap high-water mark of f in MiB relative to the
// post-GC baseline. Coarse, but it reproduces the ordering.
func peakHeap(f func()) float64 {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	done := make(chan struct{})
	peak := base.HeapAlloc
	go func() {
		defer close(done)
		f()
	}()
	ticker := time.NewTicker(200 * time.Microsecond)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > peak {
				peak = m.HeapAlloc
			}
			return float64(peak-base.HeapAlloc) / (1 << 20)
		case <-ticker.C:
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > peak {
				peak = m.HeapAlloc
			}
		}
	}
}

// figure4: compression ratio by file component.
func figure4(opt options) {
	header("Figure 4: compression breakdown by component")
	files := corpus(opt.seed, opt.n)
	var origClass [model.NumClasses]float64
	var compClass [model.NumClasses]float64
	var headerOrig, headerComp, totalOrig, totalComp float64
	for _, data := range files {
		res, err := core.Encode(data, core.EncodeOptions{CollectStats: true})
		if err != nil {
			continue
		}
		for c := 0; c < model.NumClasses; c++ {
			origClass[c] += float64(res.OriginalClassBits[c]) / 8
			compClass[c] += res.ClassBits[c] / 8
		}
		headerOrig += float64(res.HeaderOriginal)
		headerComp += float64(res.HeaderCompressed)
		totalOrig += float64(len(data))
		totalComp += float64(len(res.Compressed))
	}
	t := &stats.Table{Header: []string{"category", "original bytes %", "compression ratio %", "bytes saved %"}}
	add := func(name string, orig, comp float64) {
		t.Add(name,
			stats.F(100*orig/totalOrig, 1),
			stats.F(100*comp/orig, 1),
			stats.F(100*(orig-comp)/totalOrig, 1))
	}
	add("Header", headerOrig, headerComp)
	add("7x7 AC", origClass[model.Class77], compClass[model.Class77])
	add("7x1/1x7", origClass[model.ClassEdge], compClass[model.ClassEdge])
	add("DC", origClass[model.ClassDC], compClass[model.ClassDC])
	add("Total", totalOrig, totalComp)
	fmt.Print(t)
	fmt.Println("paper: header 2.3%/47.6%; 7x7 49.7%/80.2%; 7x1&1x7 39.8%/78.7%; DC 8.2%/59.9%; total 77.3%.")
}

// sizeSweep generates images at growing dimensions for Figures 6-8.
func sizeSweep(seed int64) [][]byte {
	var out [][]byte
	for _, w := range []int{128, 192, 256, 384, 512, 768, 1024, 1400, 1800} {
		data, err := imagegen.Generate(seed+int64(w), w, w*3/4)
		if err != nil {
			panic(err)
		}
		out = append(out, data)
	}
	return out
}

// figure6: savings vs file size.
func figure6(opt options) {
	header("Figure 6: compression savings across file sizes")
	t := &stats.Table{Header: []string{"size KiB", "savings %", "threads"}}
	for _, data := range sizeSweep(opt.seed) {
		res, err := core.Encode(data, core.EncodeOptions{})
		if err != nil {
			continue
		}
		t.Add(stats.F(float64(len(data))/1024, 0),
			stats.F(100*(1-float64(len(res.Compressed))/float64(len(data))), 1),
			stats.I(int64(res.Segments)))
	}
	fmt.Print(t)
	fmt.Println("paper: savings uniform across sizes (~23% +- a few points).")
}

// figure7: decompression speed vs size per thread count.
func figure7(opt options) {
	header("Figure 7: decompression speed vs file size by thread count")
	figureSpeed(opt, false)
}

// figure8: compression speed vs size per thread count (the encoder's
// serial Huffman decode caps gains past 4 threads).
func figure8(opt options) {
	header("Figure 8: compression speed vs file size by thread count")
	figureSpeed(opt, true)
}

func figureSpeed(opt options, encode bool) {
	t := &stats.Table{Header: []string{"size KiB", "1 thread Mbps", "2", "4", "8"}}
	for _, data := range sizeSweep(opt.seed) {
		row := []string{stats.F(float64(len(data))/1024, 0)}
		for _, threads := range []int{1, 2, 4, 8} {
			res, err := core.Encode(data, core.EncodeOptions{ForceSegments: threads})
			if err != nil {
				row = append(row, "-")
				continue
			}
			mb := float64(len(data)) * 8 / 1e6
			reps := 1
			if len(data) < 200<<10 {
				reps = 3
			}
			var secs float64
			if encode {
				t0 := time.Now()
				for i := 0; i < reps; i++ {
					_, _ = core.Encode(data, core.EncodeOptions{ForceSegments: threads})
				}
				secs = time.Since(t0).Seconds() / float64(reps)
			} else {
				t0 := time.Now()
				for i := 0; i < reps; i++ {
					_, _ = core.Decode(res.Compressed, 0)
				}
				secs = time.Since(t0).Seconds() / float64(reps)
			}
			row = append(row, stats.F(mb/secs, 1))
		}
		t.Add(row...)
	}
	fmt.Print(t)
	if encode {
		fmt.Println("paper: compression gains flatten past 4 threads (serial JPEG Huffman decode).")
	} else {
		fmt.Println("paper: decompression scales with threads via Huffman handover words.")
	}
}

// ablationTable: §4.3 — per-component compression with predictors toggled.
func ablationTable(opt options) {
	header("§4.3 ablations: edge prediction and DC gradient prediction")
	files := corpus(opt.seed, opt.n)
	configs := []struct {
		name  string
		flags model.Flags
	}{
		{"full model", model.DefaultFlags()},
		{"no edge prediction", model.Flags{EdgePrediction: false, DCGradient: true}},
		{"no DC gradient", model.Flags{EdgePrediction: true, DCGradient: false}},
		{"neither (PackJPG-2007)", model.Flags{}},
	}
	t := &stats.Table{Header: []string{"config", "edge ratio %", "DC ratio %", "total ratio %"}}
	for _, cfg := range configs {
		var origEdge, compEdge, origDC, compDC, orig, comp float64
		flags := cfg.flags
		for _, data := range files {
			res, err := core.Encode(data, core.EncodeOptions{Flags: &flags, CollectStats: true})
			if err != nil {
				continue
			}
			origEdge += float64(res.OriginalClassBits[model.ClassEdge])
			compEdge += res.ClassBits[model.ClassEdge]
			origDC += float64(res.OriginalClassBits[model.ClassDC])
			compDC += res.ClassBits[model.ClassDC]
			orig += float64(len(data))
			comp += float64(len(res.Compressed))
		}
		t.Add(cfg.name,
			stats.F(100*compEdge/origEdge, 1),
			stats.F(100*compDC/origDC, 1),
			stats.F(100*comp/orig, 1))
	}
	fmt.Print(t)
	fmt.Println("paper: edge prediction improves 7x1/1x7 from 82.5% to 78.7%;")
	fmt.Println("       DC gradient improves DC from 79.4% to 59.9%.")
}

// errorTable: §6.2 exit-code distribution over the anomaly corpus.
func errorTable(opt options) {
	header("§6.2 exit codes over the anomaly-mix corpus")
	n := opt.n * 10
	if n < 200 {
		n = 200
	}
	if opt.quick {
		n = 120
	}
	q := cluster.ErrorCodeTable(opt.seed, n)
	fmt.Print(q.String())
	fmt.Println("paper: Success 94.069%, Progressive 3.043%, Unsupported 1.535%, Not an image 0.801%,")
	fmt.Println("       CMYK 0.478%, >24MiB decode 0.024%, roundtrip/chroma/AC-range trace amounts.")
}

// costTable: §5.6.1 — paper constants plus a calibrated run using this
// machine's measured encode throughput.
func costTable(opt options) {
	header("§5.6.1 cost effectiveness")
	paper := cluster.Cost(cluster.DefaultBackfillConfig())
	fmt.Printf("paper constants:   %.0f conversions/kWh, %.1f GiB saved/kWh, breakeven $%.2f/kWh\n",
		paper.ConversionsPerKWh, paper.GiBSavedPerKWh, paper.BreakevenUSDPerKWh)
	fmt.Printf("                   %.3g images/yr/machine, %.1f TiB saved/yr, $%.0f/yr at S3 IA\n",
		paper.ImagesPerYearPerMachine, paper.TiBSavedPerYearPerMachine, paper.S3AnnualUSDPerMachine)

	n := opt.n / 3
	if n < 4 {
		n = 4
	}
	files := corpusLarge(opt.seed, n) // paper's 1.5 MB average chunk
	var bytesIn, bytesOut int64
	t0 := time.Now()
	count := 0
	for _, data := range files {
		res, err := core.Encode(data, core.EncodeOptions{VerifyRoundtrip: true})
		if err != nil {
			continue
		}
		bytesIn += int64(len(data))
		bytesOut += int64(len(res.Compressed))
		count++
	}
	secs := time.Since(t0).Seconds()
	cfg := cluster.DefaultBackfillConfig()
	cfg.ImagesPerSecPerMachine = float64(count) / secs
	cfg.AvgImageMB = float64(bytesIn) / float64(count) / 1e6
	cfg.SavingsRatio = 1 - float64(bytesOut)/float64(bytesIn)
	c := cluster.Cost(cfg)
	fmt.Printf("this machine:      %.1f images/s (avg %.2f MB, %.1f%% savings, verify on)\n",
		cfg.ImagesPerSecPerMachine, cfg.AvgImageMB, 100*cfg.SavingsRatio)
	fmt.Printf("                   %.0f conversions/kWh, %.1f GiB saved/kWh, breakeven $%.2f/kWh\n",
		c.ConversionsPerKWh, c.GiBSavedPerKWh, c.BreakevenUSDPerKWh)
}

// extensionsTable measures the optional capabilities production disabled:
// spectral-selection progressive and CMYK (§6.2's "intentionally disabled"
// features, implemented behind opt-in flags).
func extensionsTable(opt options) {
	header("Extensions: progressive (spectral selection) and CMYK, opt-in")
	t := &stats.Table{Header: []string{"input", "bytes", "lepton bytes", "savings %", "roundtrip"}}
	addRow := func(name string, data []byte, o core.EncodeOptions) {
		o.VerifyRoundtrip = true
		res, err := core.Encode(data, o)
		if err != nil {
			t.Add(name, stats.I(int64(len(data))), "-", "-", err.Error())
			return
		}
		t.Add(name, stats.I(int64(len(data))), stats.I(int64(len(res.Compressed))),
			stats.F(100*(1-float64(len(res.Compressed))/float64(len(data))), 1), "ok")
	}
	img := imagegen.Synthesize(opt.seed, 400, 300)
	cmyk, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, CMYK: true, PadBit: 1})
	if err == nil {
		addRow("cmyk 400x300", cmyk, core.EncodeOptions{AllowCMYK: true})
	}
	base, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, SubsampleChroma: true, PadBit: 1})
	if err == nil {
		addRow("baseline 400x300 (reference)", base, core.EncodeOptions{})
	}
	fmt.Print(t)
	fmt.Println("progressive inputs: see TestProgressiveContainerRoundTrip (19.8-29.8% savings);")
	fmt.Println("paper: these classes were 3.0% (progressive) and 0.5% (CMYK) of backfill inputs.")
}
