package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"lepton/internal/baseline"
	"lepton/internal/core"
	"lepton/internal/cpufeat"
	"lepton/internal/diskstore"
	"lepton/internal/imagegen"
)

// The BENCH_<n>.json artifact (ROADMAP "Raw speed"): a machine-readable
// record of the single-node Figure 1/2 hot-path benchmarks plus the disk
// chunk store's put/get/replay paths, checked in per PR so the
// performance trajectory is tracked instead of anecdotal. The corpus and
// codecs match bench_test.go's BenchmarkFigure2Compress /
// BenchmarkFigure1Decompress, so `go test -bench` output and artifacts
// stay comparable.

type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// PeakCoeffB is the process-wide high-water mark of streamed
	// coefficient row-window bytes (the §5.1 memory ceiling) observed up
	// to the end of this benchmark.
	PeakCoeffB int64 `json:"peak_coeff_b"`
}

type benchArtifact struct {
	GitSHA     string        `json:"git_sha"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	AVX2       bool          `json:"avx2"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		sha += "-dirty"
	}
	return sha
}

// benchCorpus mirrors bench_test.go's loadCorpus: eight deterministic
// images, ~40-400 KiB.
func benchJSONCorpus() [][]byte {
	var corpus [][]byte
	for seed := int64(1); seed <= 8; seed++ {
		data, err := imagegen.Generate(seed, 256+int(seed)*96, 192+int(seed)*72)
		if err != nil {
			panic(err)
		}
		corpus = append(corpus, data)
	}
	return corpus
}

func record(name string, r testing.BenchmarkResult) benchRecord {
	_, peak := core.CoeffMemStats()
	return benchRecord{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		PeakCoeffB:  peak,
	}
}

// diskBenchmarks measures the durable chunk store's three hot paths:
// the acknowledged put (append plus the group commit's fsync), the
// indexed read with its CRC re-check, and the crash-recovery replay that
// rebuilds the index from the segment log on open. 64 KiB chunks — the
// example deployments' size; the put/get cost is dominated by fsync and
// CRC, not chunk size.
func diskBenchmarks() []benchRecord {
	const (
		chunkSize = 64 << 10
		chunkN    = 256 // replay log: 256 x 64 KiB = 16 MiB
	)
	payload := make([]byte, chunkSize)
	rand.New(rand.NewSource(42)).Read(payload)
	// The store keys on the caller-supplied content hash and never
	// recomputes it, so counter-derived hashes keep hashing cost out of
	// the measurement.
	hashAt := func(i int) (h diskstore.Hash) {
		binary.LittleEndian.PutUint64(h[:], uint64(i))
		return h
	}
	mustOpen := func(dir string, opt diskstore.Options) *diskstore.Store {
		s, err := diskstore.Open(dir, opt)
		if err != nil {
			panic(err)
		}
		return s
	}
	scratch := func() string {
		dir, err := os.MkdirTemp("", "leptonbench-disk")
		if err != nil {
			panic(err)
		}
		return dir
	}
	var recs []benchRecord

	// Put: every op appends a fresh record and blocks until an fsync
	// covers it (SyncInterval 0) — the cost of an acknowledged durable
	// write, one committer deep.
	putDir := scratch()
	defer os.RemoveAll(putDir)
	ps := mustOpen(putDir, diskstore.Options{CompactInterval: -1})
	var putSeq int
	put := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			putSeq++
			if err := ps.Put(hashAt(putSeq), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = ps.Close()
	recs = append(recs, record("DiskStorePut/64KiB", put))

	// Get: random-ish indexed reads over a warm store, each re-verifying
	// the record CRC.
	getDir := scratch()
	defer os.RemoveAll(getDir)
	gs := mustOpen(getDir, diskstore.Options{SyncInterval: -1, CompactInterval: -1})
	for i := 1; i <= chunkN; i++ {
		if err := gs.Put(hashAt(i), payload); err != nil {
			panic(err)
		}
	}
	get := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, ok, err := gs.Get(hashAt(i%chunkN + 1))
			if err != nil || !ok || len(data) != chunkSize {
				b.Fatalf("get: ok=%v err=%v", ok, err)
			}
		}
	})
	_ = gs.Close()
	recs = append(recs, record("DiskStoreGet/64KiB", get))

	// Replay: open over a populated log — the warm-restart cost of
	// rebuilding the in-memory index (and CRC-checking every record).
	replayDir := scratch()
	defer os.RemoveAll(replayDir)
	rs := mustOpen(replayDir, diskstore.Options{SyncInterval: -1, CompactInterval: -1})
	for i := 1; i <= chunkN; i++ {
		if err := rs.Put(hashAt(i), payload); err != nil {
			panic(err)
		}
	}
	_ = rs.Close()
	replay := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := mustOpen(replayDir, diskstore.Options{SyncInterval: -1, CompactInterval: -1})
			if s.Len() != chunkN {
				b.Fatalf("replayed %d chunks, want %d", s.Len(), chunkN)
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	recs = append(recs, record("DiskStoreReplayOpen/16MiB", replay))
	return recs
}

// rangeBenchmarks measures range-serving TTFB against the cost it avoids:
// a 1 KiB (and 64 KiB) ranged read of a ~20 MB seek-indexed container
// versus decompressing the whole file. This is the ROADMAP "range serving"
// claim in artifact form — a small read costs one or two segments, not the
// file.
func rangeBenchmarks() []benchRecord {
	// ~20 MB baseline JPEG: a high-quality, non-subsampled synthetic photo.
	// Encoded at ForceSegments 32 so the seek index has real granularity.
	img := imagegen.Synthesize(9, 10200, 7650)
	jpg, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 95, PadBit: 1})
	if err != nil {
		panic(err)
	}
	// A 78-MP image's row windows exceed the default 24-MiB decode budget;
	// raise it for this artifact (the production ceiling is per-file size
	// policy, not a correctness bound).
	const memBudget = 96 << 20
	res, err := core.Encode(jpg, core.EncodeOptions{
		ForceSegments: 32, MemDecodeBudget: memBudget, MemEncodeBudget: 512 << 20,
	})
	if err != nil {
		panic(err)
	}
	comp := res.Compressed
	size := int64(len(jpg))
	mb := size >> 20

	var recs []benchRecord
	full := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Decode(comp, memBudget); err != nil {
				b.Fatal(err)
			}
		}
	})
	recs = append(recs, record(fmt.Sprintf("FullDecompress/%dMB", mb), full))

	for _, rd := range []struct {
		name string
		n    int64
	}{{"1KiB", 1 << 10}, {"64KiB", 64 << 10}} {
		rd := rd
		rng := rand.New(rand.NewSource(7))
		bm := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				off := rng.Int63n(size - rd.n)
				got, err := core.DecodeRange(comp, off, rd.n, memBudget)
				if err != nil || int64(len(got)) != rd.n {
					b.Fatalf("range read: %d bytes, %v", len(got), err)
				}
			}
		})
		recs = append(recs, record(fmt.Sprintf("RangeTTFB/%s@%dMB", rd.name, mb), bm))
	}
	return recs
}

// writeBenchJSON measures the Figure 1/2 codec hot paths and the disk
// store, writing the artifact to path (conventionally BENCH_<pr>.json at
// the repo root).
func writeBenchJSON(path string) {
	corpus := benchJSONCorpus()
	art := benchArtifact{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		AVX2:       cpufeat.X86.HasAVX2,
	}
	for _, c := range []baseline.Codec{baseline.LeptonPooled{}, baseline.Lepton{}} {
		c := c
		comp := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, d := range corpus {
					if _, err := c.Compress(d); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		art.Benchmarks = append(art.Benchmarks, record("Figure2Compress/"+c.Name(), comp))

		var comps [][]byte
		for _, d := range corpus {
			cd, err := c.Compress(d)
			if err != nil {
				panic(err)
			}
			comps = append(comps, cd)
		}
		dec := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, cd := range comps {
					if _, err := c.Decompress(cd); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		art.Benchmarks = append(art.Benchmarks, record("Figure1Decompress/"+c.Name(), dec))
	}
	art.Benchmarks = append(art.Benchmarks, diskBenchmarks()...)
	art.Benchmarks = append(art.Benchmarks, rangeBenchmarks()...)
	art.Benchmarks = append(art.Benchmarks, backfillBenchmark())
	out, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		panic(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "leptonbench: bench-json:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, git %s)\n", path, len(art.Benchmarks), art.GitSHA)
}
