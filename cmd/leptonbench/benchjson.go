package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"lepton/internal/baseline"
	"lepton/internal/core"
	"lepton/internal/cpufeat"
	"lepton/internal/imagegen"
)

// The BENCH_<n>.json artifact (ROADMAP "Raw speed"): a machine-readable
// record of the single-node Figure 1/2 hot-path benchmarks, checked in per
// PR so the performance trajectory is tracked instead of anecdotal. The
// corpus and codecs match bench_test.go's BenchmarkFigure2Compress /
// BenchmarkFigure1Decompress, so `go test -bench` output and artifacts
// stay comparable.

type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// PeakCoeffB is the process-wide high-water mark of streamed
	// coefficient row-window bytes (the §5.1 memory ceiling) observed up
	// to the end of this benchmark.
	PeakCoeffB int64 `json:"peak_coeff_b"`
}

type benchArtifact struct {
	GitSHA     string        `json:"git_sha"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	AVX2       bool          `json:"avx2"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		sha += "-dirty"
	}
	return sha
}

// benchCorpus mirrors bench_test.go's loadCorpus: eight deterministic
// images, ~40-400 KiB.
func benchJSONCorpus() [][]byte {
	var corpus [][]byte
	for seed := int64(1); seed <= 8; seed++ {
		data, err := imagegen.Generate(seed, 256+int(seed)*96, 192+int(seed)*72)
		if err != nil {
			panic(err)
		}
		corpus = append(corpus, data)
	}
	return corpus
}

func record(name string, r testing.BenchmarkResult) benchRecord {
	_, peak := core.CoeffMemStats()
	return benchRecord{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		PeakCoeffB:  peak,
	}
}

// writeBenchJSON measures the Figure 1/2 codec hot paths and writes the
// artifact to path (conventionally BENCH_<pr>.json at the repo root).
func writeBenchJSON(path string) {
	corpus := benchJSONCorpus()
	art := benchArtifact{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		AVX2:       cpufeat.X86.HasAVX2,
	}
	for _, c := range []baseline.Codec{baseline.LeptonPooled{}, baseline.Lepton{}} {
		c := c
		comp := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, d := range corpus {
					if _, err := c.Compress(d); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		art.Benchmarks = append(art.Benchmarks, record("Figure2Compress/"+c.Name(), comp))

		var comps [][]byte
		for _, d := range corpus {
			cd, err := c.Compress(d)
			if err != nil {
				panic(err)
			}
			comps = append(comps, cd)
		}
		dec := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, cd := range comps {
					if _, err := c.Decompress(cd); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		art.Benchmarks = append(art.Benchmarks, record("Figure1Decompress/"+c.Name(), dec))
	}
	out, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		panic(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "leptonbench: bench-json:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, git %s)\n", path, len(art.Benchmarks), art.GitSHA)
}
