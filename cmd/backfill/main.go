// Command backfill runs the §5.6 background recompression pipeline against
// a live blockserver fleet: it walks a manifest (corpusgen -manifest), fans
// work across the nodes under per-node congestion windows, verifies every
// round trip before acknowledging it, and checkpoints progress durably so a
// killed run resumes where it stopped instead of starting over.
//
// A multi-worker deployment splits the manifest with -shard/-shards; each
// worker owns the manifest indices congruent to its shard and keeps its own
// checkpoint record, so workers share nothing but the fleet.
//
// Usage:
//
//	corpusgen -manifest 100000 -out photos.manifest
//	backfill -manifest photos.manifest -nodes tcp:h1:7701,tcp:h2:7701 -ckpt ./ckpt
//
// Interrupt (SIGINT/SIGTERM) stops the run gracefully: in-flight files
// finish or requeue, a final checkpoint is cut, and the next invocation
// resumes from it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lepton/internal/backfill"
	"lepton/internal/diskstore"
	"lepton/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backfill: ")

	manifestPath := flag.String("manifest", "", "manifest file (corpusgen -manifest format); \"-\" reads stdin")
	nodesFlag := flag.String("nodes", "", "comma-separated fleet node addresses (tcp:host:port or unix:path)")
	ckptDir := flag.String("ckpt", "", "checkpoint directory (durable disk store); required for resumability")
	shard := flag.Int("shard", 0, "this worker's shard index")
	shards := flag.Int("shards", 1, "total number of shard workers")
	verify := flag.Bool("verify", true, "round-trip decompress and content-hash check before committing each file")
	windowFloor := flag.Int("window-floor", 1, "per-node congestion window floor")
	windowCap := flag.Int("window-cap", 32, "per-node congestion window cap")
	maxAhead := flag.Int("max-ahead", 1024, "how far past the checkpoint cursor to work ahead")
	ckptEvery := flag.Duration("checkpoint-every", 500*time.Millisecond, "checkpoint timer interval")
	ckptFiles := flag.Int("checkpoint-files", 256, "checkpoint after this many commits")
	yieldLow := flag.Int("yield-low", 2, "foreground in-flight depth at which windows shrink toward the floor")
	yieldHigh := flag.Int("yield-high", 8, "foreground in-flight depth at which backfill pauses")
	yieldPoll := flag.Duration("yield-poll", 50*time.Millisecond, "live-load probe interval (negative disables yielding)")
	progress := flag.Duration("progress", 5*time.Second, "progress log interval (0 disables)")
	flag.Parse()

	if *manifestPath == "" || *nodesFlag == "" || *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "backfill: -manifest, -nodes, and -ckpt are required")
		flag.Usage()
		os.Exit(2)
	}

	m, err := readManifest(*manifestPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("manifest: %d entries, shard %d/%d", len(m.Entries), *shard, *shards)

	cs, err := diskstore.Open(*ckptDir, diskstore.Options{})
	if err != nil {
		log.Fatalf("checkpoint store: %v", err)
	}
	defer cs.Close()

	fleet, err := server.NewFleet(strings.Split(*nodesFlag, ","), &server.FleetOptions{
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	defer fleet.Close()

	eng, err := backfill.New(backfill.Config{
		Shard:           *shard,
		Shards:          *shards,
		WindowFloor:     *windowFloor,
		WindowCap:       *windowCap,
		MaxAhead:        *maxAhead,
		CheckpointEvery: *ckptEvery,
		CheckpointFiles: *ckptFiles,
		YieldLow:        *yieldLow,
		YieldHigh:       *yieldHigh,
		YieldPoll:       *yieldPoll,
		Verify:          *verify,
		Logf:            log.Printf,
	}, fleet, &backfill.SyntheticSource{CacheCap: 256}, cs, m)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *progress > 0 {
		go func() {
			tick := time.NewTicker(*progress)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				st := eng.Stats()
				log.Printf("progress: %d/%d files (cursor %d/%d), %d retries, %d quarantined, ckpt seq %d",
					st["total_files"], len(m.Entries)/max(*shards, 1), st["cursor"], st["shard_len"],
					st["retries"], st["quarantined"], st["checkpoint_seq"])
			}
		}()
	}

	start := time.Now()
	res, err := eng.Run(ctx)
	elapsed := time.Since(start)

	verb := "completed"
	if !res.Complete {
		verb = "stopped"
	}
	log.Printf("%s after %v: %d files this run (%d total), %d→%d bytes (%.2f%% savings), %d retries, %d checkpoints",
		verb, elapsed.Round(time.Millisecond), res.Files, res.TotalFiles,
		res.TotalIn, res.TotalOut, 100*(1-ratio(res.TotalOut, res.TotalIn)), res.Retries, res.Checkpoints)
	if res.Resumed {
		log.Printf("run resumed from a previous checkpoint")
	}
	if res.YieldShrinks+res.YieldPauses > 0 {
		log.Printf("yielded to live traffic: %d window shrinks, %d pauses", res.YieldShrinks, res.YieldPauses)
	}
	if len(res.Quarantined) > 0 {
		log.Printf("quarantined %d files (manifest indices): %v", len(res.Quarantined), res.Quarantined)
	}
	if err != nil && !res.Complete {
		log.Printf("interrupted (%v); rerun with the same -ckpt to resume", err)
	}
}

func readManifest(path string) (backfill.Manifest, error) {
	if path == "-" {
		return backfill.ReadManifest(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return backfill.Manifest{}, err
	}
	defer f.Close()
	return backfill.ReadManifest(f)
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
