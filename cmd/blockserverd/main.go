// Command blockserverd runs a Lepton blockserver: it accepts compression
// and decompression requests over a Unix-domain socket or TCP, and can
// outsource work to peers or a dedicated cluster when oversubscribed
// (paper §5.5).
//
// A fleet is N of these processes, each started with -store (so the
// store-backed chunk operations are enabled) and -peers listing the other
// members (so oversubscribed conversions outsource by power-of-two load
// probes). Clients route across the members with lepton.DialFleet and
// place replicated chunks with lepton.NewFleetStore; see the README's
// "Running a fleet" section and examples/fleet.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, requests
// already in flight finish, and stragglers are force-cancelled when the
// drain timeout expires — the rollout/rollback discipline of §5.7. A
// second signal forces an immediate shutdown.
//
// Usage:
//
//	blockserverd -listen unix:/tmp/lepton.sock
//	blockserverd -listen tcp:0.0.0.0:7731 -dedicated tcp:10.0.0.5:7731,tcp:10.0.0.6:7731
//	blockserverd -listen tcp::7731 -peers tcp:peer1:7731,tcp:peer2:7731 -threshold 3
//	blockserverd -listen tcp::7731 -store -peers tcp:peer1:7731,tcp:peer2:7731
//	blockserverd -listen tcp::7731 -data-dir /var/lib/lepton -sync-interval 50ms
//	blockserverd -listen tcp::7731 -request-timeout 30s -drain-timeout 10s
//	blockserverd -listen tcp::7731 -debug-addr 127.0.0.1:7732
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lepton/internal/admin"
	"lepton/internal/diskstore"
	"lepton/internal/server"
	"lepton/internal/store"
)

// newDebugServer builds the daemon's debug/admin HTTP server: the
// blockserver's counters under /debug/vars (the shape the old expvar
// endpoint served) and /api/stats, on an owned *http.Server with a private
// mux and a ReadHeaderTimeout — never http.DefaultServeMux, never
// unshutdownable. Kept as a named helper so the lifecycle is testable: the
// drain path must Shutdown it and release the port (see main_test.go).
func newDebugServer(b *server.Blockserver) *admin.Server {
	adm := admin.New()
	adm.Register("blockserver", b.StatsSnapshot)
	return adm
}

func main() {
	listen := flag.String("listen", "unix:/tmp/lepton.sock", "listen address (unix:<path> or tcp:<host:port>)")
	dedicated := flag.String("dedicated", "", "comma-separated dedicated outsourcing targets")
	peers := flag.String("peers", "", "comma-separated peer blockservers for to-self outsourcing")
	threshold := flag.Int("threshold", 3, "outsource when more conversions than this are in flight")
	shards := flag.Int("shards", 0,
		"worker shards, each with a private codec pinned to a connection set;"+
			" 0 = one per core (GOMAXPROCS)")
	maxConcurrent := flag.Int("max-concurrent", 0,
		"deprecated alias for -shards; 0 defers to -shards")
	requestTimeout := flag.Duration("request-timeout", 0,
		"per-request deadline; conversions running longer are cancelled (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long a graceful shutdown waits for in-flight requests before cancelling them")
	debugAddr := flag.String("debug-addr", "",
		"optional HTTP address serving /debug/vars with conversion counters,"+
			" in-flight requests, and peak streamed-coefficient window bytes")
	withStore := flag.Bool("store", false,
		"enable the store-backed chunk operations (OpPutChunk*/OpGetChunk*), making"+
			" this node a member of a distributed fleet store")
	chunkSize := flag.Int("store-chunk-size", 0,
		"chunk size in bytes for server-side uploads; 0 = 4 MiB")
	shutoff := flag.String("store-shutoff", "",
		"shutoff-switch path: if this file exists the store bypasses Lepton and"+
			" deflates instead (§5.7 kill switch; production used /dev/shm)")
	dataDir := flag.String("data-dir", "",
		"directory for the durable chunk store (implies -store): chunks are"+
			" appended to CRC-framed segment logs and survive restarts; empty"+
			" keeps the in-memory store")
	syncInterval := flag.Duration("sync-interval", 0,
		"disk-store fsync batching: 0 group-commits every put before acking,"+
			" >0 syncs at most that often (bounded loss window), <0 never syncs")
	segmentSize := flag.Int64("segment-size", 0,
		"disk-store segment target size in bytes before rotation; 0 = 64 MiB")
	compactInterval := flag.Duration("compact-interval", 0,
		"how often the disk store looks for garbage-heavy segments to rewrite;"+
			" 0 = 15s, <0 disables background compaction")
	flag.Parse()

	b := &server.Blockserver{
		OutsourceThreshold: *threshold,
		Shards:             *shards,
		MaxConcurrent:      *maxConcurrent,
		RequestTimeout:     *requestTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "blockserverd: "+format+"\n", args...)
		},
	}
	var disk *diskstore.Store
	if *withStore || *dataDir != "" {
		var st *store.Store
		if *dataDir != "" {
			var err error
			disk, err = diskstore.Open(*dataDir, diskstore.Options{
				SyncInterval:      *syncInterval,
				SegmentTargetSize: *segmentSize,
				CompactInterval:   *compactInterval,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "blockserverd: "+format+"\n", args...)
				},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "blockserverd:", err)
				os.Exit(1)
			}
			st = store.NewWithBackend(disk)
			fmt.Printf("durable store in %s (%d chunks replayed)\n", *dataDir, disk.Len())
		} else {
			st = store.New()
		}
		st.ChunkSize = *chunkSize
		st.ShutoffPath = *shutoff
		b.Store = st
	}
	switch {
	case *dedicated != "":
		b.Outsource = server.NewDedicatedPool(strings.Split(*dedicated, ","), time.Now().UnixNano())
	case *peers != "":
		b.Outsource = server.NewPeerPool(strings.Split(*peers, ","), time.Now().UnixNano())
	}

	addr, err := server.ListenAndServe(*listen, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blockserverd:", err)
		os.Exit(1)
	}
	fmt.Printf("blockserverd listening on %s (threshold %d)\n", addr, *threshold)

	var adm *admin.Server
	if *debugAddr != "" {
		// The snapshot source reads counters plus the row-window memory
		// gauges on every scrape, making production memory behavior (the
		// §5.1 streaming ceiling) observable without instrumentation.
		adm = newDebugServer(b)
		dbg, err := adm.ListenAndServe(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blockserverd:", err)
			os.Exit(1)
		}
		fmt.Printf("debug vars on http://%s/debug/vars\n", dbg)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("draining (up to %v): compresses=%d decompresses=%d outsourced=%d errors=%d cancelled=%d\n",
		*drainTimeout, b.Stats.Compresses.Load(), b.Stats.Decompresses.Load(),
		b.Stats.Outsourced.Load(), b.Stats.Errors.Load(), b.Stats.Cancelled.Load())

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		// A second signal abandons the drain.
		<-sig
		cancel()
	}()
	if adm != nil {
		// The debug port is part of the drain contract: release it now so a
		// replacement process (same machine, rolling restart) can bind it,
		// instead of holding it until exit as the old ListenAndServe did.
		if err := adm.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "blockserverd: debug server shutdown:", err)
		}
	}
	err = b.Shutdown(ctx)
	if disk != nil {
		// After the drain: no request can still be appending, so the close
		// fsync seals the log cleanly.
		if cerr := disk.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "blockserverd: closing disk store:", cerr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "blockserverd: drain incomplete, stragglers cancelled: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("drained cleanly")
}
