// Command blockserverd runs a Lepton blockserver: it accepts compression
// and decompression requests over a Unix-domain socket or TCP, and can
// outsource work to peers or a dedicated cluster when oversubscribed
// (paper §5.5).
//
// Usage:
//
//	blockserverd -listen unix:/tmp/lepton.sock
//	blockserverd -listen tcp:0.0.0.0:7731 -dedicated tcp:10.0.0.5:7731,tcp:10.0.0.6:7731
//	blockserverd -listen tcp::7731 -peers tcp:peer1:7731,tcp:peer2:7731 -threshold 3
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"lepton/internal/server"
)

func main() {
	listen := flag.String("listen", "unix:/tmp/lepton.sock", "listen address (unix:<path> or tcp:<host:port>)")
	dedicated := flag.String("dedicated", "", "comma-separated dedicated outsourcing targets")
	peers := flag.String("peers", "", "comma-separated peer blockservers for to-self outsourcing")
	threshold := flag.Int("threshold", 3, "outsource when more conversions than this are in flight")
	maxConcurrent := flag.Int("max-concurrent", server.DefaultMaxConcurrent,
		"bound on conversions running at once (the shared worker pool); extra requests queue")
	flag.Parse()

	b := &server.Blockserver{
		OutsourceThreshold: *threshold,
		MaxConcurrent:      *maxConcurrent,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "blockserverd: "+format+"\n", args...)
		},
	}
	switch {
	case *dedicated != "":
		b.Outsource = server.NewDedicatedPool(strings.Split(*dedicated, ","), time.Now().UnixNano())
	case *peers != "":
		b.Outsource = server.NewPeerPool(strings.Split(*peers, ","), time.Now().UnixNano())
	}

	addr, err := server.ListenAndServe(*listen, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blockserverd:", err)
		os.Exit(1)
	}
	fmt.Printf("blockserverd listening on %s (threshold %d)\n", addr, *threshold)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Printf("shutting down: compresses=%d decompresses=%d outsourced=%d errors=%d\n",
		b.Stats.Compresses.Load(), b.Stats.Decompresses.Load(),
		b.Stats.Outsourced.Load(), b.Stats.Errors.Load())
	_ = b.Close()
}
