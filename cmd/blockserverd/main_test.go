package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"lepton/internal/server"
)

// TestDebugServerReleasesPortOnDrain is the regression test for the
// lifecycle bug this daemon shipped with: the debug HTTP server was
// started with http.ListenAndServe on the global mux and never shut down,
// so a SIGTERM drain left the debug port bound until process exit. The
// drain path now owns the server and must release the port the moment
// Shutdown returns — exactly what a rolling restart on the same machine
// needs.
func TestDebugServerReleasesPortOnDrain(t *testing.T) {
	b := &server.Blockserver{}
	adm := newDebugServer(b)
	addr, err := adm.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The endpoint serves the blockserver snapshot in the expvar shape the
	// old endpoint exported: {"blockserver": {"compresses": 0, ...}}.
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	var vars map[string]map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	bs, ok := vars["blockserver"]
	if !ok {
		t.Fatalf("no blockserver section: %v", vars)
	}
	for _, key := range []string{"compresses", "decompresses", "in_flight", "coeff_window_bytes_peak"} {
		if _, ok := bs[key]; !ok {
			t.Fatalf("debug vars missing %q: %v", key, bs)
		}
	}

	// Drain: the same shutdown call main makes. The port must be free
	// before the in-flight conversions would even finish draining.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := adm.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("debug port %s still bound after drain: %v", addr, err)
	}
	ln.Close()
}
