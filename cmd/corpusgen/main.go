// Command corpusgen generates the synthetic evaluation corpus: procedural
// baseline JPEGs across a range of sizes and encoding parameters, plus the
// §6.2 anomaly classes (progressive, CMYK, non-image, truncated, ...).
//
// With -fuzz-seeds it instead regenerates the checked-in seed corpora for
// the fuzz targets (FuzzDecode and FuzzDecompressRange in internal/core,
// FuzzStorePut in internal/store, FuzzSegmentReplay in
// internal/diskstore): valid inputs plus corrupted and truncated variants,
// written in Go's corpus-file format under each package's testdata/fuzz/
// directory.
//
// With -manifest N it instead emits a deterministic backfill manifest:
// N entries with stable IDs and zipf-mixed sizes in the text format
// cmd/backfill consumes, written to -out (a file path in this mode), or
// stdout when -out is not set.
//
// Usage:
//
//	corpusgen -n 200 -out ./corpus [-seed 1] [-errors]
//	corpusgen -manifest 100000 -out backfill.manifest [-seed 1]
//	corpusgen -fuzz-seeds .     # from the repo root
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"

	"lepton/internal/backfill"
	"lepton/internal/cluster"
	"lepton/internal/core"
	"lepton/internal/diskstore"
	"lepton/internal/imagegen"
)

func main() {
	n := flag.Int("n", 100, "number of files")
	out := flag.String("out", "corpus", "output directory")
	seed := flag.Int64("seed", 1, "generator seed")
	withErrors := flag.Bool("errors", false, "use the §6.2 anomaly mix instead of all-valid files")
	minDim := flag.Int("min", 64, "minimum image dimension")
	maxDim := flag.Int("max", 640, "maximum image dimension")
	oversize := flag.Int("oversize", 0,
		"additionally generate this many 2600x2000 4:4:4 images whose whole"+
			" coefficient planes exceed the 24 MiB decode budget — they stream"+
			" through the row-window pipeline (memory-bound testing)")
	fuzzSeeds := flag.String("fuzz-seeds", "",
		"regenerate the checked-in fuzz seed corpora under <dir>/internal/"+
			"{core,store}/testdata/fuzz/ and exit (pass the repo root)")
	manifestN := flag.Int("manifest", 0,
		"emit an N-entry deterministic backfill manifest (zipf-mixed sizes,"+
			" stable IDs) instead of JPEG files; -out becomes the output file"+
			" path (stdout if unset)")
	flag.Parse()

	if *fuzzSeeds != "" {
		writeFuzzSeeds(*fuzzSeeds)
		return
	}
	if *manifestN > 0 {
		writeManifest(*seed, *manifestN, *out, flagWasSet("out"))
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *withErrors {
		files := cluster.BuildErrorCorpus(*seed, *n)
		for i, data := range files {
			write(*out, i, data)
		}
		fmt.Printf("wrote %d files (anomaly mix) to %s\n", len(files), *out)
		return
	}
	rng := rand.New(rand.NewSource(*seed))
	var total int64
	for i := 0; i < *n; i++ {
		w := *minDim + rng.Intn(*maxDim-*minDim+1)
		h := *minDim + rng.Intn(*maxDim-*minDim+1)
		data, err := imagegen.Generate(rng.Int63(), w, h)
		if err != nil {
			fatal(err)
		}
		write(*out, i, data)
		total += int64(len(data))
	}
	for i := 0; i < *oversize; i++ {
		img := imagegen.Synthesize(rng.Int63(), 2600, 2000)
		data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, PadBit: 1})
		if err != nil {
			fatal(err)
		}
		write(*out, *n+i, data)
		total += int64(len(data))
	}
	fmt.Printf("wrote %d JPEGs (%.1f MB) to %s\n", *n+*oversize, float64(total)/1e6, *out)
}

func write(dir string, i int, data []byte) {
	name := filepath.Join(dir, fmt.Sprintf("img-%05d.jpg", i))
	if err := os.WriteFile(name, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// writeManifest emits the synthetic backfill manifest. The same (seed, n)
// always produces byte-identical output, so a manifest can be regenerated
// instead of shipped.
func writeManifest(seed int64, n int, out string, toFile bool) {
	m := backfill.Synthetic(seed, n)
	if !toFile {
		if err := backfill.WriteManifest(os.Stdout, m); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	if err := backfill.WriteManifest(f, m); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d-entry manifest (seed %d) to %s\n", n, seed, out)
}

// --- fuzz seed corpora ----------------------------------------------------

// mustEncode compresses one generated JPEG into a container.
func mustEncode(img []byte, err error) []byte {
	if err != nil {
		fatal(err)
	}
	res, err := core.Encode(img, core.EncodeOptions{})
	if err != nil {
		fatal(err)
	}
	return res.Compressed
}

// withVariants appends a byte-flip corruption and a truncation of every
// sufficiently large seed — the container-grammar head start the fuzzers
// want, mirroring the in-test seed builders.
func withVariants(seeds [][]byte, flipFromEnd int, frac int) [][]byte {
	n := len(seeds)
	for i := 0; i < n; i++ {
		s := seeds[i]
		if len(s) > 64 {
			c := append([]byte(nil), s...)
			c[len(c)-flipFromEnd] ^= 0x5A
			seeds = append(seeds, c, s[:len(s)*frac/(frac+1)])
		}
	}
	return seeds
}

// writeFuzzSeeds regenerates the committed corpora for FuzzDecode
// (internal/core) and FuzzStorePut (internal/store). Deterministic: the
// same binary always writes the same files.
func writeFuzzSeeds(root string) {
	// FuzzDecode: the whole-file decoder's grammar.
	sy := imagegen.Synthesize(3, 120, 88)
	decodeSeeds := [][]byte{
		mustEncode(imagegen.EncodeJPEG(sy, imagegen.Options{Quality: 85, PadBit: 1})),
		mustEncode(imagegen.EncodeJPEG(sy, imagegen.Options{Quality: 85, Grayscale: true, PadBit: 1})),
		mustEncode(imagegen.EncodeJPEG(sy, imagegen.Options{Quality: 75, SubsampleChroma: true, RestartInterval: 3, PadBit: 0})),
		rawContainer("not a jpeg", 10),
	}
	decodeSeeds = withVariants(decodeSeeds, 17, 3)
	writeCorpus(filepath.Join(root, "internal", "core", "testdata", "fuzz", "FuzzDecode"), decodeSeeds)

	// FuzzDecompressRange: the same container grammar paired with range
	// bounds — start-of-file, interior, tail-crossing, and clamped-past-EOF
	// reads over intact, bit-flipped, and truncated containers.
	var rangeSeeds []rangeSeed
	for i, s := range decodeSeeds {
		bounds := [...][2]int64{{0, 1024}, {int64(211*i + 7), 257}, {4096, 1}, {0, 1 << 30}}
		b := bounds[i%len(bounds)]
		rangeSeeds = append(rangeSeeds, rangeSeed{data: s, off: b[0], n: b[1]})
	}
	writeRangeCorpus(filepath.Join(root, "internal", "core", "testdata", "fuzz", "FuzzDecompressRange"), rangeSeeds)

	// FuzzStorePut: chunk containers through store admission.
	sy2 := imagegen.Synthesize(5, 112, 80)
	storeSeeds := [][]byte{
		mustEncode(imagegen.EncodeJPEG(sy2, imagegen.Options{Quality: 85, PadBit: 1})),
		mustEncode(imagegen.EncodeJPEG(sy2, imagegen.Options{Quality: 75, Grayscale: true, PadBit: 0})),
		mustEncode(imagegen.EncodeJPEG(sy2, imagegen.Options{Quality: 70, SubsampleChroma: true, RestartInterval: 2, PadBit: 1})),
		rawContainer("raw chunk payload", 17),
	}
	storeSeeds = withVariants(storeSeeds, 9, 1)
	writeCorpus(filepath.Join(root, "internal", "store", "testdata", "fuzz", "FuzzStorePut"), storeSeeds)

	// FuzzSegmentReplay: on-disk segment logs through crash-recovery
	// replay. Built by writing through a real store so the seeds track the
	// record format; variants add the bit flips and torn tails replay must
	// absorb.
	segSeeds := [][]byte{
		{},
		segmentBytes(func(s *diskstore.Store) {
			put(s, "lone chunk payload")
		}),
		segmentBytes(func(s *diskstore.Store) {
			put(s, "first chunk")
			put(s, "second chunk with a somewhat longer payload to vary record sizes")
			put(s, "") // zero-length payload is a legal record
		}),
		segmentBytes(func(s *diskstore.Store) {
			h := put(s, "chunk that gets deleted")
			put(s, "chunk that survives")
			if err := s.Delete(h); err != nil {
				fatal(err)
			}
		}),
	}
	segSeeds = withVariants(segSeeds, 7, 2)
	writeCorpus(filepath.Join(root, "internal", "diskstore", "testdata", "fuzz", "FuzzSegmentReplay"), segSeeds)
}

// put stores payload under its content hash and returns the hash.
func put(s *diskstore.Store, payload string) diskstore.Hash {
	h := sha256.Sum256([]byte(payload))
	if err := s.Put(h, []byte(payload)); err != nil {
		fatal(err)
	}
	return h
}

// segmentBytes runs build against a scratch disk store and returns the
// first segment file's raw bytes. Deterministic: record framing depends
// only on the written hashes and payloads.
func segmentBytes(build func(s *diskstore.Store)) []byte {
	dir, err := os.MkdirTemp("", "corpusgen-seg")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := diskstore.Open(dir, diskstore.Options{SyncInterval: -1, CompactInterval: -1})
	if err != nil {
		fatal(err)
	}
	build(s)
	if err := s.Close(); err != nil {
		fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "seg-00000001.log"))
	if err != nil {
		fatal(err)
	}
	return b
}

func rawContainer(payload string, size uint32) []byte {
	c := &core.Container{Mode: core.ModeRaw, Raw: []byte(payload), OutputSize: size}
	b, err := c.Marshal()
	if err != nil {
		fatal(err)
	}
	return b
}

// writeCorpus writes seeds in Go's corpus-file format ("go test fuzz v1"
// plus one quoted []byte per fuzz argument), replacing the directory so a
// reshaped generation cannot leave stale seed files behind for CI to keep
// replaying.
// rangeSeed is one FuzzDecompressRange corpus entry: a container plus the
// requested byte range.
type rangeSeed struct {
	data   []byte
	off, n int64
}

// writeRangeCorpus writes multi-argument corpus files for the
// ([]byte, int64, int64) fuzz signature of FuzzDecompressRange.
func writeRangeCorpus(dir string, seeds []rangeSeed) {
	if err := os.RemoveAll(dir); err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	for i, s := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s.data)) + ")\n" +
			"int64(" + strconv.FormatInt(s.off, 10) + ")\n" +
			"int64(" + strconv.FormatInt(s.n, 10) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d fuzz seeds to %s\n", len(seeds), dir)
}

func writeCorpus(dir string, seeds [][]byte) {
	if err := os.RemoveAll(dir); err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	for i, s := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d fuzz seeds to %s\n", len(seeds), dir)
}
