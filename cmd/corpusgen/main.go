// Command corpusgen generates the synthetic evaluation corpus: procedural
// baseline JPEGs across a range of sizes and encoding parameters, plus the
// §6.2 anomaly classes (progressive, CMYK, non-image, truncated, ...).
//
// Usage:
//
//	corpusgen -n 200 -out ./corpus [-seed 1] [-errors]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"lepton/internal/cluster"
	"lepton/internal/imagegen"
)

func main() {
	n := flag.Int("n", 100, "number of files")
	out := flag.String("out", "corpus", "output directory")
	seed := flag.Int64("seed", 1, "generator seed")
	withErrors := flag.Bool("errors", false, "use the §6.2 anomaly mix instead of all-valid files")
	minDim := flag.Int("min", 64, "minimum image dimension")
	maxDim := flag.Int("max", 640, "maximum image dimension")
	oversize := flag.Int("oversize", 0,
		"additionally generate this many 2600x2000 4:4:4 images whose whole"+
			" coefficient planes exceed the 24 MiB decode budget — they stream"+
			" through the row-window pipeline (memory-bound testing)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *withErrors {
		files := cluster.BuildErrorCorpus(*seed, *n)
		for i, data := range files {
			write(*out, i, data)
		}
		fmt.Printf("wrote %d files (anomaly mix) to %s\n", len(files), *out)
		return
	}
	rng := rand.New(rand.NewSource(*seed))
	var total int64
	for i := 0; i < *n; i++ {
		w := *minDim + rng.Intn(*maxDim-*minDim+1)
		h := *minDim + rng.Intn(*maxDim-*minDim+1)
		data, err := imagegen.Generate(rng.Int63(), w, h)
		if err != nil {
			fatal(err)
		}
		write(*out, i, data)
		total += int64(len(data))
	}
	for i := 0; i < *oversize; i++ {
		img := imagegen.Synthesize(rng.Int63(), 2600, 2000)
		data, err := imagegen.EncodeJPEG(img, imagegen.Options{Quality: 85, PadBit: 1})
		if err != nil {
			fatal(err)
		}
		write(*out, *n+i, data)
		total += int64(len(data))
	}
	fmt.Printf("wrote %d JPEGs (%.1f MB) to %s\n", *n+*oversize, float64(total)/1e6, *out)
}

func write(dir string, i int, data []byte) {
	name := filepath.Join(dir, fmt.Sprintf("img-%05d.jpg", i))
	if err := os.WriteFile(name, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
