// Command lepton is the standalone compression tool: it round-trip
// compresses and decompresses baseline JPEG files, mirroring the production
// binary's roles (compress, decompress, verify) plus chunked operation.
//
// Usage:
//
//	lepton compress  [-threads N] [-verify] <in.jpg>  <out.lep>
//	lepton decompress <in.lep> <out.jpg>
//	lepton verify    <in.jpg>
//	lepton chunk     [-size BYTES] <in.jpg> <outdir>
//	lepton unchunk   <outdir> <out.jpg>
//	lepton info      <in.lep>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lepton"
	"lepton/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "compress":
		err = cmdCompress(args)
	case "decompress":
		err = cmdDecompress(args)
	case "verify":
		err = cmdVerify(args)
	case "chunk":
		err = cmdChunk(args)
	case "unchunk":
		err = cmdUnchunk(args)
	case "info":
		err = cmdInfo(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lepton:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lepton <compress|decompress|verify|chunk|unchunk|info> [flags] ...`)
	os.Exit(2)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	threads := fs.Int("threads", 0, "thread segments (0 = by size)")
	verify := fs.Bool("verify", true, "verify round trip before writing")
	oneWay := fs.Bool("1way", false, "single-model maximum-compression mode")
	progressive := fs.Bool("progressive", false, "accept spectral-selection progressive JPEGs")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("compress: need input and output paths")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := lepton.Compress(data, &lepton.Options{
		Threads: *threads, Verify: *verify, SingleModel: *oneWay,
		AllowProgressive: *progressive,
	})
	if err != nil {
		return fmt.Errorf("%s (reason: %v)", err, lepton.ReasonOf(err))
	}
	if err := os.WriteFile(fs.Arg(1), res.Compressed, 0o644); err != nil {
		return err
	}
	el := time.Since(start)
	fmt.Printf("%d -> %d bytes (%.2f%% savings), %d threads, %.0f ms, %.1f Mbps\n",
		len(data), len(res.Compressed),
		100*(1-float64(len(res.Compressed))/float64(len(data))),
		res.Threads, float64(el.Milliseconds()),
		float64(len(data))*8/1e6/el.Seconds())
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("decompress: need input and output paths")
	}
	comp, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	start := time.Now()
	out, err := lepton.Decompress(comp)
	if err != nil {
		return err
	}
	if err := os.WriteFile(fs.Arg(1), out, 0o644); err != nil {
		return err
	}
	el := time.Since(start)
	fmt.Printf("%d -> %d bytes, %.0f ms, %.1f Mbps\n",
		len(comp), len(out), float64(el.Milliseconds()),
		float64(len(out))*8/1e6/el.Seconds())
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("verify: need an input path")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := lepton.Verify(data, nil); err != nil {
		return fmt.Errorf("FAILED: %v (reason: %v)", err, lepton.ReasonOf(err))
	}
	fmt.Println("round trip OK")
	return nil
}

func cmdChunk(args []string) error {
	fs := flag.NewFlagSet("chunk", flag.ExitOnError)
	size := fs.Int("size", lepton.ChunkSize, "chunk size in bytes")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("chunk: need input path and output directory")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	chunks, err := lepton.CompressChunks(data, &lepton.ChunkOptions{ChunkSize: *size, Verify: true})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(fs.Arg(1), 0o755); err != nil {
		return err
	}
	total := 0
	for i, c := range chunks {
		name := filepath.Join(fs.Arg(1), fmt.Sprintf("chunk-%04d.lep", i))
		if err := os.WriteFile(name, c, 0o644); err != nil {
			return err
		}
		total += len(c)
	}
	fmt.Printf("%d chunks, %d -> %d bytes (%.2f%% savings)\n",
		len(chunks), len(data), total, 100*(1-float64(total)/float64(len(data))))
	return nil
}

func cmdUnchunk(args []string) error {
	fs := flag.NewFlagSet("unchunk", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("unchunk: need input directory and output path")
	}
	names, err := filepath.Glob(filepath.Join(fs.Arg(0), "chunk-*.lep"))
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("no chunks in %s", fs.Arg(0))
	}
	sort.Strings(names)
	var chunks [][]byte
	for _, n := range names {
		c, err := os.ReadFile(n)
		if err != nil {
			return err
		}
		chunks = append(chunks, c)
	}
	out, err := lepton.ReassembleChunks(chunks)
	if err != nil {
		return err
	}
	if err := os.WriteFile(fs.Arg(1), out, 0o644); err != nil {
		return err
	}
	fmt.Printf("reassembled %d bytes from %d chunks\n", len(out), len(chunks))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: need an input path")
	}
	comp, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if !lepton.IsCompressed(comp) {
		return fmt.Errorf("not a Lepton container")
	}
	c, err := core.Unmarshal(comp)
	if err != nil {
		return err
	}
	fmt.Printf("mode: %c\noutput size: %d\n", c.Mode, c.OutputSize)
	if c.Mode == core.ModeLepton {
		fmt.Printf("jpeg header: %d bytes\ntrailer: %d bytes\nprepend: %d bytes\n",
			len(c.JPEGHeader), len(c.Trailer), len(c.Prepend))
		fmt.Printf("pad bit: %d\nrestart markers: %d\nMCU range: [%d, %d)\n",
			c.PadBit, c.RSTCount, c.MCUStart, c.MCUEnd)
		fmt.Printf("thread segments: %d\n", len(c.Segments))
		for i, s := range c.Segments {
			fmt.Printf("  segment %d: startMCU=%d bitOff=%d rstSeen=%d arith=%d bytes\n",
				i, s.StartMCU, s.Handover.BitOff, s.Handover.RSTSeen, s.ArithLen)
		}
	}
	return nil
}
