// Command lepton is the standalone compression tool: it round-trip
// compresses and decompresses baseline JPEG files, mirroring the production
// binary's roles (compress, decompress, verify) plus chunked operation.
//
// Usage:
//
//	lepton compress  [-threads N] [-verify] <in.jpg>  <out.lep>
//	lepton decompress <in.lep> <out.jpg>
//	lepton verify    <in.jpg>
//	lepton chunk     [-size BYTES] <in.jpg> <outdir>
//	lepton unchunk   <outdir> <out.jpg>
//	lepton info      <in.lep>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lepton"
	"lepton/internal/core"
)

// codec is shared across subcommands so multi-file operations (chunking in
// particular) reuse pooled model state.
var codec = lepton.NewCodec()

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "compress":
		err = cmdCompress(args)
	case "decompress":
		err = cmdDecompress(args)
	case "verify":
		err = cmdVerify(args)
	case "chunk":
		err = cmdChunk(args)
	case "unchunk":
		err = cmdUnchunk(args)
	case "info":
		err = cmdInfo(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lepton:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lepton <compress|decompress|verify|chunk|unchunk|info> [flags] ...`)
	os.Exit(2)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	threads := fs.Int("threads", 0, "thread segments (0 = by size)")
	verify := fs.Bool("verify", true, "verify round trip before writing")
	oneWay := fs.Bool("1way", false, "single-model maximum-compression mode")
	progressive := fs.Bool("progressive", false, "accept spectral-selection progressive JPEGs")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("compress: need input and output paths")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := codec.Compress(data, &lepton.Options{
		Threads: *threads, Verify: *verify, SingleModel: *oneWay,
		AllowProgressive: *progressive,
	})
	if err != nil {
		return fmt.Errorf("%s (reason: %v)", err, lepton.ReasonOf(err))
	}
	if err := os.WriteFile(fs.Arg(1), res.Compressed, 0o644); err != nil {
		return err
	}
	el := time.Since(start)
	fmt.Printf("%d -> %d bytes (%.2f%% savings), %d threads, %.0f ms, %.1f Mbps\n",
		len(data), len(res.Compressed),
		100*(1-float64(len(res.Compressed))/float64(len(data))),
		res.Threads, float64(el.Milliseconds()),
		float64(len(data))*8/1e6/el.Seconds())
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("decompress: need input and output paths")
	}
	comp, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	start := time.Now()
	// Stream the reconstruction into the output file, segment by segment,
	// instead of buffering it whole.
	n, err := streamToFile(fs.Arg(1), func(w io.Writer) error {
		return codec.DecompressTo(w, comp)
	})
	if err != nil {
		return err
	}
	el := time.Since(start)
	fmt.Printf("%d -> %d bytes, %.0f ms, %.1f Mbps\n",
		len(comp), n, float64(el.Milliseconds()),
		float64(n)*8/1e6/el.Seconds())
	return nil
}

// streamToFile streams fill's output into path via a temp file renamed into
// place on success, so a failed decode never truncates or corrupts an
// existing output file. Returns the byte count written.
func streamToFile(path string, fill func(io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".lepton-*")
	if err != nil {
		return 0, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	cw := &countingWriter{w: bw}
	if err := fill(cw); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Chmod(name, 0o644); err != nil {
		os.Remove(name)
		return 0, err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("verify: need an input path")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := codec.Verify(data, nil); err != nil {
		return fmt.Errorf("FAILED: %v (reason: %v)", err, lepton.ReasonOf(err))
	}
	fmt.Println("round trip OK")
	return nil
}

func cmdChunk(args []string) error {
	fs := flag.NewFlagSet("chunk", flag.ExitOnError)
	size := fs.Int("size", lepton.ChunkSize, "chunk size in bytes")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("chunk: need input path and output directory")
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(fs.Arg(1), 0o755); err != nil {
		return err
	}
	// Stream the input: chunks are written as they are produced, so files
	// larger than the encoder's memory budget flow through in raw mode
	// without ever being held whole.
	total, nChunks := 0, 0
	err = codec.CompressChunksFrom(in, &lepton.ChunkOptions{ChunkSize: *size, Verify: true},
		func(c []byte) error {
			name := filepath.Join(fs.Arg(1), fmt.Sprintf("chunk-%04d.lep", nChunks))
			nChunks++
			total += len(c)
			return os.WriteFile(name, c, 0o644)
		})
	if err != nil {
		return err
	}
	fmt.Printf("%d chunks, %d -> %d bytes (%.2f%% savings)\n",
		nChunks, st.Size(), total, 100*(1-float64(total)/float64(st.Size())))
	return nil
}

func cmdUnchunk(args []string) error {
	fs := flag.NewFlagSet("unchunk", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("unchunk: need input directory and output path")
	}
	names, err := filepath.Glob(filepath.Join(fs.Arg(0), "chunk-*.lep"))
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("no chunks in %s", fs.Arg(0))
	}
	sort.Strings(names)
	var chunks [][]byte
	for _, n := range names {
		c, err := os.ReadFile(n)
		if err != nil {
			return err
		}
		chunks = append(chunks, c)
	}
	// Decode chunk by chunk straight into the output file: peak memory is
	// one chunk, not the whole file.
	n, err := streamToFile(fs.Arg(1), func(w io.Writer) error {
		for _, c := range chunks {
			if err := codec.DecompressTo(w, c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("reassembled %d bytes from %d chunks\n", n, len(chunks))
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: need an input path")
	}
	comp, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if !lepton.IsCompressed(comp) {
		return fmt.Errorf("not a Lepton container")
	}
	c, err := core.Unmarshal(comp)
	if err != nil {
		return err
	}
	fmt.Printf("mode: %c\noutput size: %d\n", c.Mode, c.OutputSize)
	if c.Mode == core.ModeLepton {
		fmt.Printf("jpeg header: %d bytes\ntrailer: %d bytes\nprepend: %d bytes\n",
			len(c.JPEGHeader), len(c.Trailer), len(c.Prepend))
		fmt.Printf("pad bit: %d\nrestart markers: %d\nMCU range: [%d, %d)\n",
			c.PadBit, c.RSTCount, c.MCUStart, c.MCUEnd)
		fmt.Printf("thread segments: %d\n", len(c.Segments))
		for i, s := range c.Segments {
			fmt.Printf("  segment %d: startMCU=%d bitOff=%d rstSeen=%d arith=%d bytes\n",
				i, s.StartMCU, s.Handover.BitOff, s.Handover.RSTSeen, s.ArithLen)
		}
	}
	return nil
}
