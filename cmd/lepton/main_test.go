package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lepton/internal/imagegen"
)

func writeSample(t *testing.T, dir string, seed int64) string {
	t.Helper()
	data, err := imagegen.Generate(seed, 200, 150)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "in.jpg")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompressDecompressCommands(t *testing.T) {
	dir := t.TempDir()
	in := writeSample(t, dir, 1)
	lep := filepath.Join(dir, "out.lep")
	out := filepath.Join(dir, "out.jpg")

	if err := cmdCompress([]string{in, lep}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	if err := cmdDecompress([]string{lep, out}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	a, _ := os.ReadFile(in)
	b, _ := os.ReadFile(out)
	if !bytes.Equal(a, b) {
		t.Fatal("CLI round trip mismatch")
	}
	li, _ := os.Stat(lep)
	if li.Size() >= int64(len(a)) {
		t.Fatal("no compression via CLI")
	}
}

func TestVerifyCommand(t *testing.T) {
	dir := t.TempDir()
	in := writeSample(t, dir, 2)
	if err := cmdVerify([]string{in}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// A progressive file must fail verification with a reason.
	data, _ := os.ReadFile(in)
	prog := filepath.Join(dir, "prog.jpg")
	if err := os.WriteFile(prog, imagegen.MakeProgressive(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{prog}); err == nil {
		t.Fatal("progressive file verified")
	}
}

func TestChunkUnchunkCommands(t *testing.T) {
	dir := t.TempDir()
	in := writeSample(t, dir, 3)
	chunkDir := filepath.Join(dir, "chunks")
	out := filepath.Join(dir, "re.jpg")

	if err := cmdChunk([]string{"-size", "1024", in, chunkDir}); err != nil {
		t.Fatalf("chunk: %v", err)
	}
	names, _ := filepath.Glob(filepath.Join(chunkDir, "chunk-*.lep"))
	if len(names) < 2 {
		t.Fatalf("only %d chunks", len(names))
	}
	if err := cmdUnchunk([]string{chunkDir, out}); err != nil {
		t.Fatalf("unchunk: %v", err)
	}
	a, _ := os.ReadFile(in)
	b, _ := os.ReadFile(out)
	if !bytes.Equal(a, b) {
		t.Fatal("chunk/unchunk round trip mismatch")
	}
}

func TestInfoCommand(t *testing.T) {
	dir := t.TempDir()
	in := writeSample(t, dir, 4)
	lep := filepath.Join(dir, "x.lep")
	if err := cmdCompress([]string{"-threads", "3", in, lep}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{lep}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := cmdInfo([]string{in}); err == nil {
		t.Fatal("info accepted a non-Lepton file")
	}
}

func TestCommandArgErrors(t *testing.T) {
	if err := cmdCompress([]string{"only-one"}); err == nil {
		t.Fatal("missing output accepted")
	}
	if err := cmdDecompress([]string{"nonexistent.lep", "out"}); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := cmdUnchunk([]string{t.TempDir(), "out"}); err == nil {
		t.Fatal("empty chunk dir accepted")
	}
}
