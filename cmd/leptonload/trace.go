package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The trace model: a deterministic, production-shaped request schedule
// computed entirely up front from a seed. Arrivals follow a
// nonhomogeneous Poisson process whose rate swings sinusoidally around
// the configured mean (the diurnal pattern of a photo-storage front
// end), each arrival is assigned an operation class by the configured
// mix, and the image it touches is drawn from a zipf-size-mixed catalog
// (thumbnails dominate, a heavy tail of large photos — the same
// distribution the backfill engine models). Because the whole schedule
// exists before the first byte is sent, the harness can measure latency
// from each op's *intended* send time: a stalled fleet shows up as
// queueing delay in the histograms instead of being silently absorbed
// by a slowed-down generator (coordinated omission).

type opClass int

const (
	opCompress opClass = iota
	opDecompress
	opRange
	numOpClasses
)

func (c opClass) String() string {
	switch c {
	case opCompress:
		return "compress"
	case opDecompress:
		return "decompress"
	case opRange:
		return "range_get"
	}
	return "unknown"
}

// tracedOp is one scheduled request: fire at `at` after run start,
// against catalog image `img`. For range GETs, offFrac picks where in
// the decoded chunk the read lands.
type tracedOp struct {
	at      time.Duration
	class   opClass
	img     int
	offFrac float64
}

// killEvent schedules a node outage: node Node goes down At after run
// start and returns Down later (inproc fleets only — the harness cannot
// kill processes it does not own).
type killEvent struct {
	At   time.Duration
	Node int
	Down time.Duration
}

// parseKills parses a comma-separated kill schedule, each entry
// "<at>:<node>:<down>", e.g. "4s:1:2s,8s:0:1s".
func parseKills(s string) ([]killEvent, error) {
	if s == "" {
		return nil, nil
	}
	var kills []killEvent
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("kill %q: want <at>:<node>:<down>", part)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("kill %q: %v", part, err)
		}
		node, err := strconv.Atoi(fields[1])
		if err != nil || node < 0 {
			return nil, fmt.Errorf("kill %q: bad node index %q", part, fields[1])
		}
		down, err := time.ParseDuration(fields[2])
		if err != nil {
			return nil, fmt.Errorf("kill %q: %v", part, err)
		}
		kills = append(kills, killEvent{At: at, Node: node, Down: down})
	}
	sort.Slice(kills, func(i, j int) bool { return kills[i].At < kills[j].At })
	return kills, nil
}

// opMix weights the three op classes; zero-total means compress-only.
type opMix struct {
	Compress   float64
	Decompress float64
	Range      float64
}

// parseMix parses "compress=40,decompress=40,range=20".
func parseMix(s string) (opMix, error) {
	m := opMix{}
	if s == "" {
		return opMix{Compress: 1}, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("mix %q: want class=weight", part)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("mix %q: bad weight %q", part, v)
		}
		switch strings.TrimSpace(k) {
		case "compress":
			m.Compress = w
		case "decompress":
			m.Decompress = w
		case "range", "range_get":
			m.Range = w
		default:
			return m, fmt.Errorf("mix %q: unknown class %q", part, k)
		}
	}
	if m.Compress+m.Decompress+m.Range <= 0 {
		return m, fmt.Errorf("mix %q: all weights zero", s)
	}
	return m, nil
}

// traceSpec is the full deterministic description of a load trace.
type traceSpec struct {
	Seed          int64
	Duration      time.Duration
	Rate          float64 // mean arrivals/sec
	DiurnalAmp    float64 // relative swing in [0,1): λ(t) = Rate·(1 + Amp·sin)
	DiurnalPeriod time.Duration
	Mix           opMix
	Images        int // catalog size
	Kills         []killEvent
	RangeBytes    int64 // bytes per range GET
}

// rateAt is the instantaneous arrival rate λ(t): the mean rate modulated
// by a sinusoidal diurnal swing (a whole day compressed into
// DiurnalPeriod).
func (t traceSpec) rateAt(at time.Duration) float64 {
	if t.DiurnalAmp == 0 || t.DiurnalPeriod <= 0 {
		return t.Rate
	}
	phase := 2 * math.Pi * float64(at) / float64(t.DiurnalPeriod)
	return t.Rate * (1 + t.DiurnalAmp*math.Sin(phase))
}

// schedule materializes the trace: arrival times by thinning (generate a
// homogeneous Poisson process at λmax = Rate·(1+Amp), accept each point
// with probability λ(t)/λmax), then class and image assignment from the
// same rng stream. Identical specs produce identical schedules.
func (t traceSpec) schedule() []tracedOp {
	rng := rand.New(rand.NewSource(t.Seed))
	lambdaMax := t.Rate * (1 + t.DiurnalAmp)
	if lambdaMax <= 0 {
		return nil
	}
	total := t.Mix.Compress + t.Mix.Decompress + t.Mix.Range
	var ops []tracedOp
	at := time.Duration(0)
	for {
		// Exponential inter-arrival at the envelope rate.
		at += time.Duration(rng.ExpFloat64() / lambdaMax * float64(time.Second))
		if at >= t.Duration {
			break
		}
		if rng.Float64()*lambdaMax > t.rateAt(at) {
			continue // thinned out: we are in a diurnal trough
		}
		var class opClass
		switch p := rng.Float64() * total; {
		case p < t.Mix.Compress:
			class = opCompress
		case p < t.Mix.Compress+t.Mix.Decompress:
			class = opDecompress
		default:
			class = opRange
		}
		ops = append(ops, tracedOp{
			at:      at,
			class:   class,
			img:     rng.Intn(t.Images),
			offFrac: rng.Float64(),
		})
	}
	return ops
}
