package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLeptonloadSmoke runs the whole harness in-process: a 3-node fleet,
// a ~2s trace mixing all three op classes, one mid-run node kill, and
// the JSON results file. It asserts the file parses and carries every
// SLO field a dashboard would read — this is the same configuration the
// CI loadgen-smoke job runs under -race.
func TestLeptonloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet smoke test in -short mode")
	}
	out := filepath.Join(t.TempDir(), "LOAD_smoke.json")
	cfg := config{
		Trace: traceSpec{
			Seed:          7,
			Duration:      2 * time.Second,
			Rate:          30,
			DiurnalAmp:    0.5,
			DiurnalPeriod: 2 * time.Second,
			Mix:           opMix{Compress: 40, Decompress: 40, Range: 20},
			Images:        8,
			Kills:         []killEvent{{At: 700 * time.Millisecond, Node: 1, Down: 500 * time.Millisecond}},
			RangeBytes:    2 << 10,
		},
		InProc:      3,
		Replication: 2,
		ChunkSize:   16 << 10,
		HedgeAfter:  150 * time.Millisecond,
		MaxInFlight: 64,
		Run:         "smoke",
		Out:         out,
		Logf:        t.Logf,
	}
	if _, err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	// The returned result and the file must agree; the file is the
	// artifact CI uploads, so validate through it.
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var got result
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("results file does not parse: %v", err)
	}
	if got.Schema != "lepton-load/v1" {
		t.Fatalf("schema = %q", got.Schema)
	}
	if got.Run != "smoke" {
		t.Fatalf("run = %q", got.Run)
	}
	if got.Config.NodeCount != 3 {
		t.Fatalf("node_count = %d, want 3", got.Config.NodeCount)
	}
	if got.Config.KillsApplied != 1 {
		t.Fatalf("kills_applied = %d, want 1", got.Config.KillsApplied)
	}

	// Every op class must have run and carry the full quantile ladder.
	var total int64
	for _, class := range []string{"compress", "decompress", "range_get"} {
		cs, ok := got.OpClasses[class]
		if !ok {
			t.Fatalf("no stats for op class %q: %v", class, got.OpClasses)
		}
		if cs.Count <= 0 {
			t.Fatalf("class %q ran no ops", class)
		}
		total += cs.Count
		if cs.P50Ms <= 0 || cs.P95Ms < cs.P50Ms || cs.P99Ms < cs.P95Ms || cs.P999Ms < cs.P99Ms {
			t.Fatalf("class %q quantiles not monotone: p50=%v p95=%v p99=%v p999=%v",
				class, cs.P50Ms, cs.P95Ms, cs.P99Ms, cs.P999Ms)
		}
		if cs.MaxMs < cs.P999Ms || cs.MinMs > cs.P50Ms {
			t.Fatalf("class %q min/max inconsistent with quantiles: %+v", class, cs)
		}
	}
	if total != int64(got.Config.ScheduledOps) {
		t.Fatalf("completed %d ops, scheduled %d — the open loop must finish every op", total, got.Config.ScheduledOps)
	}

	// The throughput timeline covers the trace and accounts for every op.
	var tlTotal int64
	for _, s := range got.Throughput {
		tlTotal += s.Ops
	}
	if tlTotal != total {
		t.Fatalf("timeline accounts for %d ops, histograms for %d", tlTotal, total)
	}
	if len(got.Utilization) == 0 {
		t.Fatal("no utilization samples")
	}
	for _, s := range got.Utilization {
		if len(s.Loads) != 3 {
			t.Fatalf("utilization sample probes %d nodes, want 3", len(s.Loads))
		}
	}
	if len(got.Nodes) != 3 {
		t.Fatalf("per-node stats for %d nodes, want 3", len(got.Nodes))
	}
	if got.Fleet["requests"] <= 0 {
		t.Fatalf("fleet snapshot missing traffic: %v", got.Fleet)
	}
	if got.Store["puts"] <= 0 {
		t.Fatalf("store snapshot missing warmup puts: %v", got.Store)
	}
}

// TestTraceDeterminism: the same spec must replay the identical
// schedule — that is what makes a LOAD_<run>.json reproducible.
func TestTraceDeterminism(t *testing.T) {
	spec := traceSpec{
		Seed: 42, Duration: 5 * time.Second, Rate: 100,
		DiurnalAmp: 0.6, DiurnalPeriod: 5 * time.Second,
		Mix: opMix{Compress: 1, Decompress: 1, Range: 1}, Images: 16,
	}
	a, b := spec.schedule(), spec.schedule()
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := range a {
		if a[i].at < 0 || a[i].at >= spec.Duration {
			t.Fatalf("op %d outside the trace window: %v", i, a[i].at)
		}
		if a[i].img < 0 || a[i].img >= spec.Images {
			t.Fatalf("op %d references image %d of %d", i, a[i].img, spec.Images)
		}
	}
	// A different seed must produce a different schedule.
	spec.Seed = 43
	c := spec.schedule()
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds replayed the identical schedule")
		}
	}
}

// TestDiurnalRateShapesSchedule: with a strong diurnal swing, the peak
// half of the cycle must carry more arrivals than the trough half.
func TestDiurnalRateShapesSchedule(t *testing.T) {
	spec := traceSpec{
		Seed: 9, Duration: 20 * time.Second, Rate: 200,
		DiurnalAmp: 0.9, DiurnalPeriod: 20 * time.Second,
		Mix: opMix{Compress: 1}, Images: 4,
	}
	ops := spec.schedule()
	var peak, trough int
	for _, op := range ops {
		if op.at < spec.Duration/2 {
			peak++ // sin > 0 over the first half-cycle
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Fatalf("diurnal shaping missing: %d peak-half vs %d trough-half arrivals", peak, trough)
	}
}

func TestParseKills(t *testing.T) {
	kills, err := parseKills("4s:1:2s,1s:0:500ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []killEvent{
		{At: time.Second, Node: 0, Down: 500 * time.Millisecond},
		{At: 4 * time.Second, Node: 1, Down: 2 * time.Second},
	}
	if len(kills) != len(want) {
		t.Fatalf("got %d kills", len(kills))
	}
	for i := range want {
		if kills[i] != want[i] {
			t.Fatalf("kill %d = %+v, want %+v", i, kills[i], want[i])
		}
	}
	if got, err := parseKills(""); err != nil || got != nil {
		t.Fatalf("empty schedule: %v, %v", got, err)
	}
	for _, bad := range []string{"4s:1", "x:1:2s", "4s:-1:2s", "4s:a:2s", "4s:1:x"} {
		if _, err := parseKills(bad); err == nil {
			t.Fatalf("parseKills(%q) accepted", bad)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("compress=30,decompress=50,range=20")
	if err != nil {
		t.Fatal(err)
	}
	if m != (opMix{Compress: 30, Decompress: 50, Range: 20}) {
		t.Fatalf("mix = %+v", m)
	}
	if m, err := parseMix(""); err != nil || m != (opMix{Compress: 1}) {
		t.Fatalf("default mix = %+v, %v", m, err)
	}
	for _, bad := range []string{"compress", "bogus=1", "compress=-1", "compress=0,range=0,decompress=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}
