package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lepton"
	"lepton/internal/admin"
	"lepton/internal/backfill"
	"lepton/internal/imagegen"
	"lepton/internal/loadhist"
	"lepton/internal/server"
	"lepton/internal/store"
)

// config is everything one load run needs. Exactly one of Nodes (an
// external fleet to aim at) or InProc (spawn that many blockservers in
// this process, which also enables the kill schedule) must be set.
type config struct {
	Trace       traceSpec
	Nodes       []string
	InProc      int
	Replication int
	ChunkSize   int
	HedgeAfter  time.Duration
	MaxInFlight int
	AdminAddr   string
	Run         string
	Out         string
	Logf        func(format string, args ...any)
}

func (c config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// The results file: schema "lepton-load/v1". Latencies are reported in
// milliseconds per op class; the throughput timeline is bucketed by the
// ops' intended second, so a stalled fleet shows completed-late ops in
// their scheduled bucket rather than smearing the timeline.
type result struct {
	Schema      string                `json:"schema"`
	Run         string                `json:"run"`
	Config      resultConfig          `json:"config"`
	OpClasses   map[string]classStats `json:"op_classes"`
	Throughput  []secondStats         `json:"throughput"`
	Utilization []utilSample          `json:"utilization"`
	Fleet       map[string]int64      `json:"fleet"`
	Store       map[string]int64      `json:"store"`
	Nodes       []nodeStats           `json:"nodes"`
}

type resultConfig struct {
	Seed          int64   `json:"seed"`
	DurationSec   float64 `json:"duration_sec"`
	RatePerSec    float64 `json:"rate_per_sec"`
	DiurnalAmp    float64 `json:"diurnal_amp"`
	Images        int     `json:"images"`
	NodeCount     int     `json:"node_count"`
	Replication   int     `json:"replication"`
	ScheduledOps  int     `json:"scheduled_ops"`
	MaxInFlight   int     `json:"max_in_flight"`
	HedgeAfterMs  float64 `json:"hedge_after_ms"`
	RangeBytes    int64   `json:"range_bytes"`
	KillsApplied  int     `json:"kills_applied"`
	MixCompress   float64 `json:"mix_compress"`
	MixDecompress float64 `json:"mix_decompress"`
	MixRange      float64 `json:"mix_range"`
}

type classStats struct {
	Count   int64   `json:"count"`
	Errors  int64   `json:"errors"`
	MeanMs  float64 `json:"mean_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	P999Ms  float64 `json:"p999_ms"`
	MaxMs   float64 `json:"max_ms"`
	MinMs   float64 `json:"min_ms"`
	Timeout int64   `json:"timeouts"`
}

type secondStats struct {
	Second int   `json:"second"`
	Ops    int64 `json:"ops"`
	Errors int64 `json:"errors"`
}

type utilSample struct {
	AtMs  int64            `json:"at_ms"`
	Loads map[string]int64 `json:"loads"` // in-flight per node; -1 = probe failed
}

type nodeStats struct {
	Addr  string           `json:"addr"`
	Stats map[string]int64 `json:"stats,omitempty"`
}

// catalogImage is one pre-generated trace image: original JPEG bytes (for
// compress ops), the locally compressed container (for decompress ops),
// and — after warmup — the content hash it is stored under in the fleet
// (for range GETs).
type catalogImage struct {
	data []byte
	comp []byte
	hash lepton.ChunkHash
}

// inprocNode is one harness-owned blockserver, killable and restartable
// on the same address with its store intact (a crash, not a disk loss).
type inprocNode struct {
	addr  string
	store *store.Store
	mu    sync.Mutex
	b     *server.Blockserver
}

func (n *inprocNode) current() *server.Blockserver {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.b
}

func (n *inprocNode) kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = n.b.Close()
}

func (n *inprocNode) restart() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.b = &server.Blockserver{Store: n.store}
	_, err := server.ListenAndServe(n.addr, n.b)
	return err
}

// run executes one load run end to end and writes the results file.
func run(ctx context.Context, cfg config) (*result, error) {
	if cfg.Trace.Images <= 0 {
		cfg.Trace.Images = 32
	}
	if cfg.Trace.RangeBytes <= 0 {
		cfg.Trace.RangeBytes = 4 << 10
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}

	// The image catalog: zipf-mixed sizes from the shared backfill model,
	// generated and compressed once up front so the hot loop spends its
	// cycles on fleet requests, not local codec work for op generation.
	cfg.logf("generating %d-image catalog", cfg.Trace.Images)
	man := backfill.Synthetic(cfg.Trace.Seed, cfg.Trace.Images)
	catalog := make([]catalogImage, len(man.Entries))
	for i, e := range man.Entries {
		data, err := imagegen.Generate(e.Seed, e.W, e.H)
		if err != nil {
			return nil, fmt.Errorf("catalog image %d: %v", i, err)
		}
		res, err := lepton.Compress(data, nil)
		if err != nil {
			return nil, fmt.Errorf("catalog compress %d: %v", i, err)
		}
		catalog[i] = catalogImage{data: data, comp: res.Compressed}
	}

	// The fleet under test: external addresses, or harness-owned
	// blockservers on loopback (which the kill schedule can reach).
	var inproc []*inprocNode
	addrs := cfg.Nodes
	if cfg.InProc > 0 {
		inproc = make([]*inprocNode, cfg.InProc)
		addrs = make([]string, cfg.InProc)
		for i := range inproc {
			st := store.New()
			b := &server.Blockserver{Store: st}
			addr, err := server.ListenAndServe("tcp:127.0.0.1:0", b)
			if err != nil {
				return nil, fmt.Errorf("node %d: %v", i, err)
			}
			inproc[i] = &inprocNode{addr: addr, store: st, b: b}
			addrs[i] = addr
		}
		cfg.logf("in-process fleet: %v", addrs)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no fleet: set -nodes or -inproc")
	}

	fl, err := lepton.DialFleet(addrs, &lepton.FleetOptions{
		HedgeAfter:     cfg.HedgeAfter,
		HealthInterval: 50 * time.Millisecond,
		Seed:           cfg.Trace.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	defer fl.Close()
	fs, err := lepton.NewFleetStore(fl, &lepton.FleetStoreOptions{
		Replication: cfg.Replication,
		ChunkSize:   cfg.ChunkSize,
	})
	if err != nil {
		return nil, err
	}

	// Warmup: place every catalog image in the fleet store so range GETs
	// have content to hit from the first scheduled op.
	for i := range catalog {
		h, err := fs.Put(ctx, catalog[i].comp)
		if err != nil {
			return nil, fmt.Errorf("warmup put %d: %v", i, err)
		}
		catalog[i].hash = h
	}

	ops := cfg.Trace.schedule()
	cfg.logf("trace: %d ops over %v", len(ops), cfg.Trace.Duration)

	// Progress counters, exported live through the admin plane and
	// folded into the results file at the end.
	var sent, done, errs, inFlight atomic.Int64
	var adm *admin.Server
	if cfg.AdminAddr != "" {
		adm = admin.New()
		adm.Register("loadgen", func() map[string]int64 {
			return map[string]int64{
				"ops_scheduled": int64(len(ops)),
				"ops_sent":      sent.Load(),
				"ops_done":      done.Load(),
				"errors":        errs.Load(),
				"in_flight":     inFlight.Load(),
			}
		})
		adm.Register("fleet", fl.StatsSnapshot)
		adm.Register("store", fs.StatsSnapshot)
		for i, n := range inproc {
			n := n
			adm.Register(fmt.Sprintf("node%d", i), func() map[string]int64 {
				return n.current().StatsSnapshot()
			})
		}
		bound, err := adm.ListenAndServe(cfg.AdminAddr)
		if err != nil {
			return nil, err
		}
		cfg.logf("admin plane on http://%s/", bound)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := adm.Shutdown(sctx); err != nil {
				cfg.logf("admin shutdown: %v", err)
			}
		}()
	}

	// Per-class histograms (mutex-guarded: loadhist is single-writer by
	// design) and the per-intended-second throughput timeline.
	type classRec struct {
		mu     sync.Mutex
		hist   *loadhist.Hist
		errors int64
	}
	recs := make([]*classRec, numOpClasses)
	for i := range recs {
		recs[i] = &classRec{hist: loadhist.New()}
	}
	seconds := int(cfg.Trace.Duration/time.Second) + 1
	tlOps := make([]atomic.Int64, seconds)
	tlErrs := make([]atomic.Int64, seconds)

	// Utilization sampler: the same load probes power-of-two routing
	// uses, here as a per-node busyness time series.
	var utilMu sync.Mutex
	var utilization []utilSample
	samplerCtx, stopSampler := context.WithCancel(ctx)
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	runStart := time.Now()
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-samplerCtx.Done():
				return
			case <-tick.C:
			}
			sample := utilSample{AtMs: time.Since(runStart).Milliseconds(), Loads: make(map[string]int64, len(addrs))}
			for _, addr := range addrs {
				pctx, cancel := context.WithTimeout(samplerCtx, 200*time.Millisecond)
				load, err := fl.ProbeNode(pctx, addr)
				cancel()
				if err != nil {
					sample.Loads[addr] = -1
					continue
				}
				sample.Loads[addr] = int64(load)
			}
			utilMu.Lock()
			utilization = append(utilization, sample)
			utilMu.Unlock()
		}
	}()

	// The kill schedule: node crashes (listener dies mid-traffic, store
	// survives) and recoveries, driven off the same run clock as the ops.
	killsApplied := 0
	var killWG sync.WaitGroup
	for _, k := range cfg.Trace.Kills {
		if k.Node >= len(inproc) {
			cfg.logf("kill at %v skipped: node %d not in-process", k.At, k.Node)
			continue
		}
		killsApplied++
		killWG.Add(1)
		go func(k killEvent) {
			defer killWG.Done()
			node := inproc[k.Node]
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Until(runStart.Add(k.At))):
			}
			cfg.logf("killing node %d (%s) for %v", k.Node, node.addr, k.Down)
			node.kill()
			select {
			case <-ctx.Done():
				return
			case <-time.After(k.Down):
			}
			if err := node.restart(); err != nil {
				cfg.logf("restart node %d: %v", k.Node, err)
				return
			}
			cfg.logf("node %d back on %s", k.Node, node.addr)
		}(k)
	}

	// The open loop. The dispatcher releases each op at its intended
	// time unconditionally; the semaphore caps real concurrency but is
	// acquired *inside* the op's goroutine, so time spent waiting for a
	// slot is part of the measured latency — a saturated fleet cannot
	// slow the generator down and hide its own queueing (coordinated
	// omission).
	sem := make(chan struct{}, cfg.MaxInFlight)
	var opWG sync.WaitGroup
	opTimeout := 10 * time.Second
dispatch:
	for _, op := range ops {
		select {
		case <-ctx.Done():
			break dispatch
		case <-time.After(time.Until(runStart.Add(op.at))):
		}
		sent.Add(1)
		opWG.Add(1)
		go func(op tracedOp) {
			defer opWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			inFlight.Add(1)
			defer inFlight.Add(-1)

			img := &catalog[op.img]
			octx, cancel := context.WithTimeout(ctx, opTimeout)
			var err error
			switch op.class {
			case opCompress:
				_, err = fl.Compress(octx, img.data)
			case opDecompress:
				_, err = fl.Decompress(octx, img.comp)
			case opRange:
				n := cfg.Trace.RangeBytes
				span := int64(len(img.data)) - n
				var off int64
				if span > 0 {
					off = int64(op.offFrac * float64(span))
				}
				_, err = fs.GetRange(octx, img.hash, off, n)
			}
			cancel()
			// Latency from the op's *intended* send time: scheduling
			// slip, semaphore wait, and fleet time all count.
			lat := time.Since(runStart.Add(op.at))

			rec := recs[op.class]
			rec.mu.Lock()
			rec.hist.Record(lat)
			if err != nil {
				rec.errors++
			}
			rec.mu.Unlock()

			sec := int(op.at / time.Second)
			if sec >= seconds {
				sec = seconds - 1
			}
			tlOps[sec].Add(1)
			if err != nil {
				tlErrs[sec].Add(1)
				errs.Add(1)
			}
			done.Add(1)
		}(op)
	}
	opWG.Wait()
	killWG.Wait()
	stopSampler()
	samplerWG.Wait()
	elapsed := time.Since(runStart)
	cfg.logf("run complete: %d ops in %v (%d errors)", done.Load(), elapsed.Round(time.Millisecond), errs.Load())

	// Assemble the results file.
	res := &result{
		Schema: "lepton-load/v1",
		Run:    cfg.Run,
		Config: resultConfig{
			Seed:          cfg.Trace.Seed,
			DurationSec:   cfg.Trace.Duration.Seconds(),
			RatePerSec:    cfg.Trace.Rate,
			DiurnalAmp:    cfg.Trace.DiurnalAmp,
			Images:        cfg.Trace.Images,
			NodeCount:     len(addrs),
			Replication:   cfg.Replication,
			ScheduledOps:  len(ops),
			MaxInFlight:   cfg.MaxInFlight,
			HedgeAfterMs:  float64(cfg.HedgeAfter) / float64(time.Millisecond),
			RangeBytes:    cfg.Trace.RangeBytes,
			KillsApplied:  killsApplied,
			MixCompress:   cfg.Trace.Mix.Compress,
			MixDecompress: cfg.Trace.Mix.Decompress,
			MixRange:      cfg.Trace.Mix.Range,
		},
		OpClasses: make(map[string]classStats, numOpClasses),
		Fleet:     fl.StatsSnapshot(),
		Store:     fs.StatsSnapshot(),
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for class, rec := range recs {
		rec.mu.Lock()
		h := rec.hist
		if h.Count() > 0 {
			res.OpClasses[opClass(class).String()] = classStats{
				Count:  h.Count(),
				Errors: rec.errors,
				MeanMs: float64(h.Mean()) / float64(time.Millisecond),
				P50Ms:  ms(h.Quantile(0.50)),
				P95Ms:  ms(h.Quantile(0.95)),
				P99Ms:  ms(h.Quantile(0.99)),
				P999Ms: ms(h.Quantile(0.999)),
				MaxMs:  ms(h.Max()),
				MinMs:  ms(h.Min()),
			}
		}
		rec.mu.Unlock()
	}
	for i := range tlOps {
		res.Throughput = append(res.Throughput, secondStats{
			Second: i, Ops: tlOps[i].Load(), Errors: tlErrs[i].Load(),
		})
	}
	utilMu.Lock()
	res.Utilization = utilization
	utilMu.Unlock()
	for i, addr := range addrs {
		ns := nodeStats{Addr: addr}
		if i < len(inproc) {
			ns.Stats = inproc[i].current().StatsSnapshot()
		}
		res.Nodes = append(res.Nodes, ns)
	}
	sort.Slice(res.Nodes, func(i, j int) bool { return res.Nodes[i].Addr < res.Nodes[j].Addr })

	if cfg.Out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.Out, buf, 0o644); err != nil {
			return nil, err
		}
		cfg.logf("results written to %s", cfg.Out)
	}

	for _, n := range inproc {
		n.kill()
		_ = n.store.Close()
	}
	return res, nil
}
