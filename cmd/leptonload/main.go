// Command leptonload is the load-and-SLO harness: it replays a
// production-shaped trace — zipf-mixed image sizes, a diurnal Poisson
// arrival process, a configurable compress/decompress/range-GET mix,
// scheduled node kills — against a live fleet, open-loop, and writes a
// LOAD_<run>.json results file with per-op-class latency quantiles, a
// throughput timeline, per-node utilization from load probes, and the
// router/store counters (hedges, retries, evictions, read repairs).
//
// Scheduling is coordinated-omission-safe: every op has an intended
// send time fixed before the run starts, and latency is measured from
// that intended time, so a fleet that stalls shows the stall in its
// tail quantiles instead of quietly slowing the generator.
//
// Usage:
//
//	leptonload -inproc 3 -duration 10s -rate 40 -kill 4s:1:2s -run 010
//	leptonload -nodes tcp:10.0.0.5:7731,tcp:10.0.0.6:7731 -duration 5m -rate 200
//	leptonload -inproc 4 -mix compress=30,decompress=50,range=20 -admin-addr 127.0.0.1:7740
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

func main() {
	nodes := flag.String("nodes", "", "comma-separated fleet addresses (tcp:<host:port>) to load")
	inproc := flag.Int("inproc", 0, "spawn this many in-process blockservers instead of -nodes (enables -kill)")
	duration := flag.Duration("duration", 10*time.Second, "trace length")
	rate := flag.Float64("rate", 50, "mean arrival rate, ops/sec")
	diurnalAmp := flag.Float64("diurnal-amp", 0.5, "relative diurnal rate swing in [0,1): λ(t)=rate·(1+amp·sin)")
	diurnalPeriod := flag.Duration("diurnal-period", 0, "diurnal cycle length; 0 = the trace duration (one full day per run)")
	mix := flag.String("mix", "compress=40,decompress=40,range=20", "op-class weights")
	images := flag.Int("images", 32, "catalog size: distinct zipf-size-mixed images in the trace")
	seed := flag.Int64("seed", 1, "trace seed; identical seeds replay identical schedules")
	kill := flag.String("kill", "", "node-kill schedule, comma-separated <at>:<node>:<down> (e.g. 4s:1:2s); in-process fleets only")
	rangeBytes := flag.Int64("range-bytes", 4<<10, "bytes per range GET")
	replication := flag.Int("replication", 2, "fleet-store replication for the range-GET corpus")
	chunkSize := flag.Int("chunk-size", 0, "fleet-store chunk size; 0 = 4 MiB")
	hedgeAfter := flag.Duration("hedge-after", 100*time.Millisecond, "fleet hedging threshold; 0 disables hedging")
	maxInFlight := flag.Int("max-in-flight", 256, "cap on concurrently outstanding ops (queueing above it is measured, not hidden)")
	adminAddr := flag.String("admin-addr", "", "optional HTTP address for the live admin plane (status page + /api/stats)")
	runName := flag.String("run", "local", "run label; results default to LOAD_<run>.json")
	out := flag.String("out", "", "results file path; empty derives LOAD_<run>.json")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	kills, err := parseKills(*kill)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leptonload:", err)
		os.Exit(2)
	}
	opMix, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leptonload:", err)
		os.Exit(2)
	}
	period := *diurnalPeriod
	if period == 0 {
		period = *duration
	}
	outPath := *out
	if outPath == "" {
		outPath = fmt.Sprintf("LOAD_%s.json", *runName)
	}
	cfg := config{
		Trace: traceSpec{
			Seed:          *seed,
			Duration:      *duration,
			Rate:          *rate,
			DiurnalAmp:    *diurnalAmp,
			DiurnalPeriod: period,
			Mix:           opMix,
			Images:        *images,
			Kills:         kills,
			RangeBytes:    *rangeBytes,
		},
		InProc:      *inproc,
		Replication: *replication,
		ChunkSize:   *chunkSize,
		HedgeAfter:  *hedgeAfter,
		MaxInFlight: *maxInFlight,
		AdminAddr:   *adminAddr,
		Run:         *runName,
		Out:         outPath,
	}
	if *nodes != "" {
		cfg.Nodes = strings.Split(*nodes, ",")
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "leptonload: "+format+"\n", args...)
		}
	}

	res, err := run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leptonload:", err)
		os.Exit(1)
	}
	for _, class := range []string{"compress", "decompress", "range_get"} {
		if cs, ok := res.OpClasses[class]; ok {
			fmt.Printf("%-10s  n=%-6d err=%-4d p50=%.1fms p95=%.1fms p99=%.1fms p999=%.1fms\n",
				class, cs.Count, cs.Errors, cs.P50Ms, cs.P95Ms, cs.P99Ms, cs.P999Ms)
		}
	}
	fmt.Printf("fleet: hedged=%d hedge_wins=%d retries=%d evictions=%d read_repairs=%d\n",
		res.Fleet["hedged"], res.Fleet["hedge_wins"], res.Fleet["retries"],
		res.Fleet["evictions"], res.Store["read_repairs"])
	fmt.Printf("results: %s\n", outPath)
}
