package lepton_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"lepton"
	"lepton/internal/server"
	"lepton/internal/store"
)

// startFleetNodes spins n blockservers (with chunk stores) on loopback and
// returns their addresses.
func startFleetNodes(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		b := &server.Blockserver{Store: store.New()}
		bound, err := server.ListenAndServe("tcp:127.0.0.1:0", b)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = b.Close() })
		addrs[i] = bound
	}
	return addrs
}

// TestPublicFleetRoundtripAndStore exercises the public Fleet + FleetStore
// surface end to end over real loopback blockservers.
func TestPublicFleetRoundtripAndStore(t *testing.T) {
	addrs := startFleetNodes(t, 3)
	fleet, err := lepton.DialFleet(addrs, &lepton.FleetOptions{
		ProbeTimeout:   500 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	ctx := context.Background()
	data := gen(t, 900, 320, 240)
	comp, err := fleet.Compress(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if !lepton.IsCompressed(comp) {
		t.Fatal("fleet compress output missing magic")
	}
	back, err := fleet.Decompress(ctx, comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("fleet roundtrip mismatch")
	}
	snap := fleet.StatsSnapshot()
	if snap["requests"] < 2 || snap["nodes_up"] != 3 {
		t.Fatalf("fleet snapshot: %v", snap)
	}

	st, err := lepton.NewFleetStore(fleet, &lepton.FleetStoreOptions{Replication: 2, ChunkSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := st.PutFile(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.GetFile(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fleet store roundtrip mismatch")
	}
	for _, h := range ref.Chunks {
		if p := st.Placement(h); len(p) != 2 {
			t.Fatalf("placement %v: want 2 replicas", p)
		}
	}
	if c := st.Counters(); c.Puts == 0 || c.Gets == 0 {
		t.Fatalf("fleet store counters empty: %+v", c)
	}
}
