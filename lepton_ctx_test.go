package lepton_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"lepton"
	"lepton/internal/imagegen"
)

// TestDecompressRejectsNonLepton covers the ErrNotLepton contract: every
// decompress entry point rejects a payload without the Lepton magic with an
// errors.Is-able ErrNotLepton, before any parsing.
func TestDecompressRejectsNonLepton(t *testing.T) {
	junk := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("definitely not a lepton container"),
		{0xFF, 0xD8, 0xFF, 0xE0}, // a JPEG, not a Lepton container
	}
	for _, payload := range junk {
		if _, err := lepton.Decompress(payload); !errors.Is(err, lepton.ErrNotLepton) {
			t.Errorf("Decompress(%q): err = %v, want ErrNotLepton", payload, err)
		}
		if _, err := lepton.DecompressChunk(payload); !errors.Is(err, lepton.ErrNotLepton) {
			t.Errorf("DecompressChunk(%q): err = %v, want ErrNotLepton", payload, err)
		}
		if err := lepton.DecompressTo(io.Discard, payload); !errors.Is(err, lepton.ErrNotLepton) {
			t.Errorf("DecompressTo(%q): err = %v, want ErrNotLepton", payload, err)
		}
		if _, err := lepton.DecompressCtx(context.Background(), payload); !errors.Is(err, lepton.ErrNotLepton) {
			t.Errorf("DecompressCtx(%q): err = %v, want ErrNotLepton", payload, err)
		}
		if _, err := lepton.ReassembleChunks([][]byte{payload}); !errors.Is(err, lepton.ErrNotLepton) {
			t.Errorf("ReassembleChunks(%q): err = %v, want ErrNotLepton", payload, err)
		}
	}

	// A genuine container must not trip the check.
	data, err := imagegen.Generate(1, 128, 96)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lepton.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := lepton.Decompress(res.Compressed)
	if err != nil {
		t.Fatalf("Decompress of valid container: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestCompressCtxPreCancelled(t *testing.T) {
	data, err := imagegen.Generate(2, 256, 192)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lepton.CompressCtx(ctx, data, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompressCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := lepton.CompressCtx(ctx2, data, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CompressCtx on expired ctx: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCompressCtxCancelMidEncode is the acceptance test for the tentpole:
// cancelling CompressCtx on a large multi-segment file aborts promptly at a
// segment checkpoint with context.Canceled, and the codec's pools are not
// poisoned — the same codec afterwards produces output byte-identical to a
// fresh one-shot encode.
func TestCompressCtxCancelMidEncode(t *testing.T) {
	data, err := imagegen.Generate(5, 2048, 1536)
	if err != nil {
		t.Fatal(err)
	}

	// Reference output from a fresh one-shot encode.
	want, err := lepton.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.Threads < 2 {
		t.Fatalf("want a multi-segment file, got %d segments", want.Threads)
	}

	codec := lepton.NewCodec()
	// Baseline on this codec: warms the pools and calibrates the timing
	// bound against this machine (and the race detector's slowdown).
	start := time.Now()
	res, err := codec.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(start)
	if !bytes.Equal(res.Compressed, want.Compressed) {
		t.Fatal("pooled codec output differs from one-shot before any cancellation")
	}

	// Cancel early in the encode. If scheduling ever lets a full encode win
	// the race against the cancel, retry with a shorter delay.
	delay := baseline / 20
	cancelled := false
	for attempt := 0; attempt < 5 && !cancelled; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(delay, cancel)
		start := time.Now()
		_, err := codec.CompressCtx(ctx, data, nil)
		elapsed := time.Since(start)
		timer.Stop()
		cancel()
		if err == nil {
			delay /= 2 // encode outran the cancel; try cancelling sooner
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled CompressCtx: err = %v, want context.Canceled", err)
		}
		cancelled = true
		// The abort must happen at a row checkpoint soon after the cancel,
		// not after a full encode. Allow generous scheduling slack.
		if elapsed > delay+baseline/2 {
			t.Errorf("cancelled CompressCtx took %v (cancel at %v, full encode %v); checkpoints not honored",
				elapsed, delay, baseline)
		}
	}
	if !cancelled {
		t.Fatal("could not cancel mid-encode in 5 attempts")
	}

	// Pool non-poisoning: the interrupted codec must still produce
	// byte-identical output.
	for i := 0; i < 2; i++ {
		res, err := codec.Compress(data, nil)
		if err != nil {
			t.Fatalf("compress after cancellation: %v", err)
		}
		if !bytes.Equal(res.Compressed, want.Compressed) {
			t.Fatal("codec output changed after a cancelled conversion: pools poisoned")
		}
	}
}

// TestDecompressCtxCancelMidDecode mirrors the encode test on the decode
// side.
func TestDecompressCtxCancelMidDecode(t *testing.T) {
	data, err := imagegen.Generate(6, 2048, 1536)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lepton.Compress(data, nil)
	if err != nil {
		t.Fatal(err)
	}

	codec := lepton.NewCodec()
	start := time.Now()
	back, err := codec.Decompress(res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(start)
	if !bytes.Equal(back, data) {
		t.Fatal("round trip mismatch")
	}

	delay := baseline / 20
	cancelled := false
	for attempt := 0; attempt < 5 && !cancelled; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(delay, cancel)
		_, err := codec.DecompressCtx(ctx, res.Compressed)
		timer.Stop()
		cancel()
		if err == nil {
			delay /= 2
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled DecompressCtx: err = %v, want context.Canceled", err)
		}
		cancelled = true
	}
	if !cancelled {
		t.Fatal("could not cancel mid-decode in 5 attempts")
	}

	back, err = codec.Decompress(res.Compressed)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("decode after cancellation broken: %v", err)
	}
}

// TestCompressChunksFromCtxCancelled covers the streaming chunk path: a
// cancelled context stops emission with ctx.Err().
func TestCompressChunksFromCtxCancelled(t *testing.T) {
	data, err := imagegen.Generate(7, 1280, 960)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	err = lepton.NewCodec().CompressChunksFromCtx(ctx, bytes.NewReader(data),
		&lepton.ChunkOptions{ChunkSize: 32 << 10},
		func(chunk []byte) error { n++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Fatalf("emitted %d chunks under a cancelled ctx", n)
	}
}
